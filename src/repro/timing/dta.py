"""Dynamic timing analysis: per-cycle sensitised transition arrivals.

This is the core of the paper's "in-house STA tool": for every pair of
consecutive input vectors (the *initialising* and *sensitising* vectors,
per Xin & Joseph's observation the paper builds on) it computes, at every
node, the latest and earliest possible arrival time of the node's output
transition -- but only along *sensitised* paths, i.e. through gates whose
values actually toggle between the two vectors.

Modelling notes (documented substitutions):

* Glitch-free transition-arrival semantics: a node is considered to
  transition iff its stable logic value differs between the two vectors;
  hazards from reconvergent fanout are not modelled.  The latest arrival
  is the max over toggling fanins plus the gate delay, the earliest is the
  min -- the standard dynamic-timing approximation.
* Non-toggling nodes carry -inf (latest) / +inf (earliest), so the
  propagation needs no explicit sensitisation masks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.timing.levelize import LevelizedCircuit
from repro.timing.logic_eval import evaluate_logic

_NEG = np.float32(-np.inf)
_POS = np.float32(np.inf)


@dataclass
class CycleTimings:
    """Per-cycle aggregate timing of a pipestage's combinational cloud.

    Entry ``t`` describes the transition from input vector ``t`` to input
    vector ``t+1`` (the paper's errant cycle is ``t+1``; vector ``t`` is
    the initialising vector).

    * ``t_late``: latest output transition arrival (ps); 0 when no output
      toggles (nothing can be late).
    * ``t_early``: earliest output transition arrival (ps); +inf when no
      output toggles (nothing can violate the hold constraint).
    * ``output_toggles``: number of primary outputs that toggle.
    """

    t_late: np.ndarray
    t_early: np.ndarray
    output_toggles: np.ndarray

    def __len__(self) -> int:
        return len(self.t_late)

    def max_violations(self, clock_period: float) -> np.ndarray:
        """Boolean mask of cycles with a setup (maximum timing) violation."""
        return self.t_late > clock_period

    def min_violations(self, hold_constraint: float) -> np.ndarray:
        """Boolean mask of cycles with a hold (minimum timing) violation."""
        return self.t_early < hold_constraint

    def classify(self, clock_period: float, hold_constraint: float) -> np.ndarray:
        """Per-cycle error class (:data:`ERR_NONE` .. :data:`ERR_CE`).

        CE (consecutive error) is a maximum violation immediately followed
        by a minimum violation within the same detection-clock cycle,
        which in this frame is a cycle exhibiting both violation kinds.
        """
        max_violation = self.max_violations(clock_period)
        min_violation = self.min_violations(hold_constraint)
        classes = np.zeros(len(self.t_late), dtype=np.int8)
        classes[min_violation] = ERR_SE_MIN
        classes[max_violation] = ERR_SE_MAX
        classes[max_violation & min_violation] = ERR_CE
        return classes


#: Error classes produced by :meth:`CycleTimings.classify`.
ERR_NONE = 0
ERR_SE_MIN = 1
ERR_SE_MAX = 2
ERR_CE = 3


def _propagate_arrivals(
    circuit: LevelizedCircuit,
    values: np.ndarray,
    delays: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Latest/earliest transition arrivals for each adjacent vector pair.

    ``values`` is (num_nodes, C); the result matrices are
    (num_nodes, C-1), column ``t`` describing the vector-t -> vector-t+1
    transition.  Non-toggling nodes hold -inf / +inf.
    """
    toggled = values[:, 1:] != values[:, :-1]
    shape = toggled.shape
    late = np.full(shape, _NEG, dtype=np.float32)
    early = np.full(shape, _POS, dtype=np.float32)

    # Primary inputs switch at the launching clock edge (t = 0).
    in_ids = circuit.input_ids
    late[in_ids] = np.where(toggled[in_ids], np.float32(0.0), _NEG)
    early[in_ids] = np.where(toggled[in_ids], np.float32(0.0), _POS)

    delays32 = delays.astype(np.float32, copy=False)
    for groups in circuit.levels:
        for group in groups:
            cand_late = late[group.in0]
            cand_early = early[group.in0]
            if len(group.in1):
                cand_late = np.maximum(cand_late, late[group.in1])
                cand_early = np.minimum(cand_early, early[group.in1])
            if len(group.in2):
                cand_late = np.maximum(cand_late, late[group.in2])
                cand_early = np.minimum(cand_early, early[group.in2])
            gate_delay = delays32[group.nodes][:, None]
            toggles = toggled[group.nodes]
            late[group.nodes] = np.where(toggles, cand_late + gate_delay, _NEG)
            early[group.nodes] = np.where(toggles, cand_early + gate_delay, _POS)
    return late, early


def cycle_timings(
    circuit: LevelizedCircuit,
    inputs: np.ndarray,
    delays: np.ndarray,
    chunk: int = 2048,
) -> CycleTimings:
    """Compute per-cycle aggregate output timing for an input-vector stream.

    ``inputs`` has shape (num_primary_inputs, C); the result covers the
    C-1 vector-to-vector transitions.  Work proceeds in chunks of
    ``chunk`` transitions to bound memory.
    """
    inputs = np.asarray(inputs, dtype=bool)
    total = inputs.shape[1]
    if total < 2:
        raise ValueError("need at least two input vectors")
    if chunk < 1:
        raise ValueError("chunk must be positive")

    with obs.span("dta.cycle_timings", cycles=total, chunk=chunk):
        obs.inc("dta.evaluations")
        obs.inc("dta.cycles_analyzed", total - 1)

        out_ids = circuit.output_ids
        t_late = np.empty(total - 1, dtype=np.float32)
        t_early = np.empty(total - 1, dtype=np.float32)
        toggles = np.empty(total - 1, dtype=np.int32)

        start = 0
        while start < total - 1:
            stop = min(start + chunk, total - 1)
            window = inputs[:, start : stop + 1]
            values = evaluate_logic(circuit, window)
            late, early = _propagate_arrivals(circuit, values, delays)
            out_late = late[out_ids].max(axis=0)
            out_early = early[out_ids].min(axis=0)
            out_toggled = (values[out_ids, 1:] != values[out_ids, :-1]).sum(axis=0)
            # No output transition: nothing arrives, so nothing is late and
            # nothing violates hold.
            t_late[start:stop] = np.where(np.isfinite(out_late), out_late, 0.0)
            t_early[start:stop] = out_early
            toggles[start:stop] = out_toggled
            start = stop

        if obs.enabled():
            # Arrival-time extremes of this evaluation: the late tail is
            # where setup violations (and choke paths) live, the early
            # minimum is what the hold constraint fights.  One sample per
            # call keeps the histogram cheap and order-free.
            obs.observe("dta.t_late_max_ps", float(t_late.max()))
            finite_early = t_early[np.isfinite(t_early)]
            if len(finite_early):
                obs.observe("dta.t_early_min_ps", float(finite_early.min()))

    return CycleTimings(t_late=t_late, t_early=t_early, output_toggles=toggles)


def single_transition_arrivals(
    circuit: LevelizedCircuit,
    vector_prev: np.ndarray,
    vector_curr: np.ndarray,
    delays: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Node-resolved arrivals for one vector pair.

    Returns ``(late, early, toggled)`` arrays over all nodes; used by the
    choke-path trace-back, which needs per-node (not aggregate) timing.
    """
    obs.inc("dta.single_transitions")
    inputs = np.stack(
        [np.asarray(vector_prev, dtype=bool), np.asarray(vector_curr, dtype=bool)],
        axis=1,
    )
    values = evaluate_logic(circuit, inputs)
    late, early = _propagate_arrivals(circuit, values, delays)
    toggled = values[:, 1] != values[:, 0]
    return late[:, 0], early[:, 0], toggled
