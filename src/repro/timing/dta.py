"""Dynamic timing analysis: per-cycle sensitised transition arrivals.

This is the core of the paper's "in-house STA tool": for every pair of
consecutive input vectors (the *initialising* and *sensitising* vectors,
per Xin & Joseph's observation the paper builds on) it computes, at every
node, the latest and earliest possible arrival time of the node's output
transition -- but only along *sensitised* paths, i.e. through gates whose
values actually toggle between the two vectors.

Modelling notes (documented substitutions):

* Glitch-free transition-arrival semantics: a node is considered to
  transition iff its stable logic value differs between the two vectors;
  hazards from reconvergent fanout are not modelled.  The latest arrival
  is the max over toggling fanins plus the gate delay, the earliest is the
  min -- the standard dynamic-timing approximation.
* Non-toggling nodes carry -inf (latest) / +inf (earliest), so the
  propagation needs no explicit sensitisation masks.

Batched execution model
-----------------------

The kernel is population-level: :func:`batch_cycle_timings` times *all
chips x all cycles* of a Monte Carlo population in one call.  Logic
values depend only on the input vectors -- never on delays -- so one
:func:`~repro.timing.logic_eval.evaluate_logic` pass is shared by every
chip, and the arrival propagation broadcasts a ``(num_chips, num_nodes)``
delay matrix over a chip axis: the inner loop is levels x gate-kinds
(driven by the packed :class:`~repro.timing.levelize.GateTable`), not
chips x levels x gates.  The single-chip :func:`cycle_timings` is a thin
view over the batch kernel -- same code path, population of one -- so
scalar and batched results are bit-identical by construction (and that
identity is enforced by the ``batch_vs_scalar`` QA oracle).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.timing.levelize import LevelizedCircuit
from repro.timing.logic_eval import evaluate_logic

_NEG = np.float32(-np.inf)
_POS = np.float32(np.inf)


@dataclass
class CycleTimings:
    """Per-cycle aggregate timing of a pipestage's combinational cloud.

    Entry ``t`` describes the transition from input vector ``t`` to input
    vector ``t+1`` (the paper's errant cycle is ``t+1``; vector ``t`` is
    the initialising vector).

    * ``t_late``: latest output transition arrival (ps); 0 when no output
      toggles (nothing can be late).
    * ``t_early``: earliest output transition arrival (ps); +inf when no
      output toggles (nothing can violate the hold constraint).
    * ``output_toggles``: number of primary outputs that toggle.
    """

    t_late: np.ndarray
    t_early: np.ndarray
    output_toggles: np.ndarray

    def __len__(self) -> int:
        return len(self.t_late)

    def max_violations(self, clock_period: float) -> np.ndarray:
        """Boolean mask of cycles with a setup (maximum timing) violation."""
        return self.t_late > clock_period

    def min_violations(self, hold_constraint: float) -> np.ndarray:
        """Boolean mask of cycles with a hold (minimum timing) violation."""
        return self.t_early < hold_constraint

    def classify(self, clock_period: float, hold_constraint: float) -> np.ndarray:
        """Per-cycle error class (:data:`ERR_NONE` .. :data:`ERR_CE`).

        CE (consecutive error) is a maximum violation immediately followed
        by a minimum violation within the same detection-clock cycle,
        which in this frame is a cycle exhibiting both violation kinds.
        """
        max_violation = self.max_violations(clock_period)
        min_violation = self.min_violations(hold_constraint)
        classes = np.zeros(len(self.t_late), dtype=np.int8)
        classes[min_violation] = ERR_SE_MIN
        classes[max_violation] = ERR_SE_MAX
        classes[max_violation & min_violation] = ERR_CE
        return classes


@dataclass
class BatchCycleTimings:
    """Population-level timing: one :class:`CycleTimings` row per chip.

    ``t_late`` / ``t_early`` have shape ``(num_chips, transitions)``.
    ``output_toggles`` is ``(transitions,)`` -- logic values are
    delay-independent, so toggle counts are shared by the whole
    population.  :meth:`chip` materialises the per-chip view.
    """

    t_late: np.ndarray
    t_early: np.ndarray
    output_toggles: np.ndarray

    @property
    def num_chips(self) -> int:
        return self.t_late.shape[0]

    def __len__(self) -> int:
        return self.t_late.shape[1]

    def chip(self, index: int) -> CycleTimings:
        """The single-chip view of population member ``index``."""
        return CycleTimings(
            t_late=self.t_late[index],
            t_early=self.t_early[index],
            output_toggles=self.output_toggles,
        )


#: Error classes produced by :meth:`CycleTimings.classify`.
ERR_NONE = 0
ERR_SE_MIN = 1
ERR_SE_MAX = 2
ERR_CE = 3


def _propagate_arrivals(
    circuit: LevelizedCircuit,
    values: np.ndarray,
    delays: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Latest/earliest transition arrivals for each adjacent vector pair.

    ``values`` is (num_nodes, C).  With a 1-D ``delays`` vector the
    result matrices are (num_nodes, C-1); with a 2-D ``(num_chips,
    num_nodes)`` delay matrix they gain a chip axis, (num_nodes,
    num_chips, C-1).  Column ``t`` describes the vector-t -> vector-t+1
    transition; non-toggling nodes hold -inf / +inf.  Both modes run
    the identical element-wise float32 operations, so a population row
    is bit-identical to the corresponding single-chip run.
    """
    delays32 = np.asarray(delays).astype(np.float32, copy=False)
    batched = delays32.ndim == 2
    toggled = values[:, 1:] != values[:, :-1]
    num_nodes, transitions = toggled.shape
    if batched:
        shape: tuple[int, ...] = (num_nodes, delays32.shape[0], transitions)
    else:
        shape = (num_nodes, transitions)
    late = np.full(shape, _NEG, dtype=np.float32)
    early = np.full(shape, _POS, dtype=np.float32)

    # Primary inputs switch at the launching clock edge (t = 0).
    in_ids = circuit.input_ids
    in_toggled = toggled[in_ids]
    if batched:
        in_toggled = in_toggled[:, None, :]
    late[in_ids] = np.where(in_toggled, np.float32(0.0), _NEG)
    early[in_ids] = np.where(in_toggled, np.float32(0.0), _POS)

    table = circuit.gate_table()
    for g in range(table.num_groups):
        _kind, span = table.group(g)
        arity = int(table.arity[g])
        nodes = table.nodes[span]
        in0 = table.in0[span]
        # The gathers allocate (fancy indexing); everything downstream
        # accumulates in place -- maximum/minimum/add are elementwise
        # and deterministic, so out= reuse cannot change a single bit,
        # it only halves the temporary traffic of the hottest loop.
        cand_late = late[in0]
        cand_early = early[in0]
        if arity > 1:
            in1 = table.in1[span]
            np.maximum(cand_late, late[in1], out=cand_late)
            np.minimum(cand_early, early[in1], out=cand_early)
        if arity > 2:
            in2 = table.in2[span]
            np.maximum(cand_late, late[in2], out=cand_late)
            np.minimum(cand_early, early[in2], out=cand_early)
        toggles = toggled[nodes]
        if batched:
            gate_delay = delays32[:, nodes].T[:, :, None]  # (G, chips, 1)
            toggles = toggles[:, None, :]  # (G, 1, T)
        else:
            gate_delay = delays32[nodes][:, None]  # (G, 1)
        np.add(cand_late, gate_delay, out=cand_late)
        np.add(cand_early, gate_delay, out=cand_early)
        late[nodes] = np.where(toggles, cand_late, _NEG)
        early[nodes] = np.where(toggles, cand_early, _POS)
    return late, early


def batch_cycle_timings(
    circuit: LevelizedCircuit,
    inputs: np.ndarray,
    delay_matrix: np.ndarray,
    chunk: int = 2048,
) -> BatchCycleTimings:
    """Time a whole chip population against one input-vector stream.

    ``inputs`` has shape (num_primary_inputs, C); ``delay_matrix`` has
    shape (num_chips, num_nodes) -- one per-node delay row per
    fabricated chip.  The result covers the C-1 vector-to-vector
    transitions for every chip.

    Work proceeds in windows of roughly ``chunk / num_chips``
    transitions so the population's working set stays close to the
    single-chip kernel's; chunking never changes results (each
    transition's arrivals are a pure function of its two vectors).
    Logic evaluation is shared across the population and the seam
    column of each window is carried over, never re-evaluated.
    """
    inputs = np.asarray(inputs, dtype=bool)
    delay_matrix = np.asarray(delay_matrix)
    if delay_matrix.ndim != 2:
        raise ValueError(
            f"delay_matrix must be (num_chips, num_nodes), got {delay_matrix.shape}"
        )
    num_chips = delay_matrix.shape[0]
    if num_chips < 1:
        raise ValueError("delay_matrix must hold at least one chip")
    total = inputs.shape[1]
    if total < 2:
        raise ValueError("need at least two input vectors")
    if chunk < 1:
        raise ValueError("chunk must be positive")

    with obs.span(
        "dta.batch_cycle_timings", cycles=total, chips=num_chips, chunk=chunk
    ):
        obs.inc("dta.evaluations")
        obs.inc("dta.cycles_analyzed", total - 1)
        obs.inc("dta.chip_cycles", num_chips * (total - 1))

        # The delay-matrix float32 view is computed once per call, not
        # once per window (the old per-call astype copy, hoisted).
        delays32 = delay_matrix.astype(np.float32, copy=False)
        window = max(1, chunk // num_chips)

        out_ids = circuit.output_ids
        t_late = np.empty((num_chips, total - 1), dtype=np.float32)
        t_early = np.empty((num_chips, total - 1), dtype=np.float32)
        toggles = np.empty(total - 1, dtype=np.int32)

        boundary: np.ndarray | None = None
        start = 0
        while start < total - 1:
            stop = min(start + window, total - 1)
            if boundary is None:
                values = evaluate_logic(circuit, inputs[:, start : stop + 1])
            else:
                # Chunk seam: the window's first column was the previous
                # window's last -- reuse it instead of re-evaluating the
                # whole circuit for that vector.
                fresh = evaluate_logic(circuit, inputs[:, start + 1 : stop + 1])
                values = np.concatenate([boundary, fresh], axis=1)
            boundary = values[:, -1:]
            late, early = _propagate_arrivals(circuit, values, delays32)
            # (num_outputs, num_chips, T) -> reduce over the output axis.
            out_late = late[out_ids].max(axis=0)
            out_early = early[out_ids].min(axis=0)
            out_toggled = (values[out_ids, 1:] != values[out_ids, :-1]).sum(axis=0)
            # No output transition: nothing arrives, so nothing is late and
            # nothing violates hold.
            t_late[:, start:stop] = np.where(np.isfinite(out_late), out_late, 0.0)
            t_early[:, start:stop] = out_early
            toggles[start:stop] = out_toggled
            start = stop

        if obs.enabled():
            # Arrival-time extremes of this evaluation: the late tail is
            # where setup violations (and choke paths) live, the early
            # minimum is what the hold constraint fights.  One sample per
            # call keeps the histogram cheap and order-free.
            obs.observe("dta.t_late_max_ps", float(t_late.max()))
            finite_early = t_early[np.isfinite(t_early)]
            if len(finite_early):
                obs.observe("dta.t_early_min_ps", float(finite_early.min()))

    return BatchCycleTimings(t_late=t_late, t_early=t_early, output_toggles=toggles)


def cycle_timings(
    circuit: LevelizedCircuit,
    inputs: np.ndarray,
    delays: np.ndarray,
    chunk: int = 2048,
) -> CycleTimings:
    """Compute per-cycle aggregate output timing for an input-vector stream.

    ``inputs`` has shape (num_primary_inputs, C); the result covers the
    C-1 vector-to-vector transitions.  A thin single-chip view over
    :func:`batch_cycle_timings` (population of one).
    """
    delays = np.asarray(delays)
    if delays.ndim != 1:
        raise ValueError(f"delays must be a per-node vector, got {delays.shape}")
    batch = batch_cycle_timings(circuit, inputs, delays[None, :], chunk=chunk)
    return batch.chip(0)


def scalar_cycle_timings(
    circuit: LevelizedCircuit,
    inputs: np.ndarray,
    delays: np.ndarray,
    chunk: int = 2048,
) -> CycleTimings:
    """The pre-batching single-chip implementation, kept as a comparator.

    Windows re-run logic evaluation over ``chunk + 1`` columns and the
    propagation runs without a chip axis.  The ``batch_vs_scalar`` QA
    oracle and the kernel-parity CI step diff :func:`batch_cycle_timings`
    against this path; production code should call :func:`cycle_timings`.
    """
    inputs = np.asarray(inputs, dtype=bool)
    total = inputs.shape[1]
    if total < 2:
        raise ValueError("need at least two input vectors")
    if chunk < 1:
        raise ValueError("chunk must be positive")

    out_ids = circuit.output_ids
    t_late = np.empty(total - 1, dtype=np.float32)
    t_early = np.empty(total - 1, dtype=np.float32)
    toggles = np.empty(total - 1, dtype=np.int32)

    start = 0
    while start < total - 1:
        stop = min(start + chunk, total - 1)
        window = inputs[:, start : stop + 1]
        values = evaluate_logic(circuit, window)
        late, early = _propagate_arrivals(circuit, values, delays)
        out_late = late[out_ids].max(axis=0)
        out_early = early[out_ids].min(axis=0)
        out_toggled = (values[out_ids, 1:] != values[out_ids, :-1]).sum(axis=0)
        t_late[start:stop] = np.where(np.isfinite(out_late), out_late, 0.0)
        t_early[start:stop] = out_early
        toggles[start:stop] = out_toggled
        start = stop

    return CycleTimings(t_late=t_late, t_early=t_early, output_toggles=toggles)


def single_transition_arrivals(
    circuit: LevelizedCircuit,
    vector_prev: np.ndarray,
    vector_curr: np.ndarray,
    delays: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Node-resolved arrivals for one vector pair.

    Returns ``(late, early, toggled)`` arrays over all nodes; used by the
    choke-path trace-back, which needs per-node (not aggregate) timing.
    """
    obs.inc("dta.single_transitions")
    inputs = np.stack(
        [np.asarray(vector_prev, dtype=bool), np.asarray(vector_curr, dtype=bool)],
        axis=1,
    )
    values = evaluate_logic(circuit, inputs)
    late, early = _propagate_arrivals(circuit, values, delays)
    toggled = values[:, 1] != values[:, 0]
    return late[:, 0], early[:, 0], toggled
