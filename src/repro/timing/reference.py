"""Reference (scalar) implementations of the timing engines.

These are deliberately simple per-node Python loops with no batching or
levelisation tricks.  They exist to validate the vectorised engines in
:mod:`repro.timing.logic_eval` and :mod:`repro.timing.dta`: the property
tests check both implementations agree on random netlists, random delay
assignments, and random vector pairs.  They are also convenient for
debugging a single suspicious cycle.
"""

from __future__ import annotations

import math

from repro.gates.celllib import GateKind, evaluate_gate
from repro.gates.netlist import Netlist


def reference_logic_eval(netlist: Netlist, input_vector) -> dict[int, int]:
    """Evaluate all node values for one primary-input assignment.

    ``input_vector`` lists the input values in ``netlist.input_ids``
    order.  Returns {node_id: 0/1}.
    """
    values: dict[int, int] = {}
    inputs = iter(input_vector)
    for node_id, kind, fanins in netlist.iter_nodes():
        if kind is GateKind.INPUT:
            values[node_id] = int(bool(next(inputs)))
        else:
            values[node_id] = evaluate_gate(kind, *(values[f] for f in fanins))
    return values


def reference_transition_arrivals(
    netlist: Netlist,
    vector_prev,
    vector_curr,
    delays,
) -> tuple[dict[int, float], dict[int, float], dict[int, bool]]:
    """Scalar transition-arrival analysis for one vector pair.

    Returns ``(late, early, toggled)`` dictionaries over all nodes, with
    the same glitch-free semantics as the vectorised engine: a node
    transitions iff its stable value differs between the vectors; its
    latest (earliest) arrival is the max (min) over *toggling* fanins
    plus the gate delay; non-toggling nodes carry -inf / +inf.
    """
    prev_values = reference_logic_eval(netlist, vector_prev)
    curr_values = reference_logic_eval(netlist, vector_curr)

    late: dict[int, float] = {}
    early: dict[int, float] = {}
    toggled: dict[int, bool] = {}
    for node_id, kind, fanins in netlist.iter_nodes():
        toggles = prev_values[node_id] != curr_values[node_id]
        toggled[node_id] = toggles
        if kind is GateKind.INPUT:
            late[node_id] = 0.0 if toggles else -math.inf
            early[node_id] = 0.0 if toggles else math.inf
            continue
        if not fanins or not toggles:
            late[node_id] = -math.inf
            early[node_id] = math.inf
            continue
        latest = max(late[f] for f in fanins)
        earliest = min(early[f] for f in fanins)
        late[node_id] = latest + float(delays[node_id])
        early[node_id] = earliest + float(delays[node_id])
    return late, early, toggled


def reference_cycle_timing(
    netlist: Netlist,
    vector_prev,
    vector_curr,
    delays,
) -> tuple[float, float, int]:
    """Scalar per-cycle aggregate: (t_late, t_early, output toggles)."""
    late, early, toggled = reference_transition_arrivals(
        netlist, vector_prev, vector_curr, delays
    )
    out_ids = netlist.output_ids
    finite_late = [late[o] for o in out_ids if math.isfinite(late[o])]
    t_late = max(finite_late) if finite_late else 0.0
    t_early = min(early[o] for o in out_ids)
    toggles = sum(1 for o in out_ids if toggled[o])
    return t_late, t_early, toggles
