"""Static timing analysis: topological longest/shortest arrivals.

Used to derive the clock period (from the PV-free critical path), to plan
hold-buffer insertion (from per-output shortest paths), and as the
reference against which dynamic sensitised-path delays are compared in
the choke analytics.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.gates.netlist import Netlist


def arrival_times(netlist: Netlist, delays: np.ndarray, mode: str = "max") -> np.ndarray:
    """Per-node static arrival times.

    ``mode="max"`` gives the classic longest-path arrival, ``mode="min"``
    the shortest-path (hold-analysis) arrival.  Sources arrive at 0.
    """
    if mode not in ("max", "min"):
        raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
    with obs.span("sta.arrival_times", netlist=netlist.name, mode=mode):
        obs.inc("sta.analyses")
        combine = max if mode == "max" else min
        arrivals = np.zeros(netlist.num_nodes, dtype=np.float64)
        for node_id, _kind, fanins in netlist.iter_nodes():
            if fanins:
                arrivals[node_id] = (
                    combine(arrivals[f] for f in fanins) + delays[node_id]
                )
        return arrivals


def output_arrivals(
    netlist: Netlist, delays: np.ndarray, mode: str = "max"
) -> dict[str, float]:
    """Static arrival time at every primary output, keyed by output name."""
    arrivals = arrival_times(netlist, delays, mode)
    return {name: float(arrivals[node_id]) for name, node_id in netlist.outputs.items()}


def critical_path_delay(netlist: Netlist, delays: np.ndarray) -> float:
    """Longest static path delay to any primary output."""
    arrivals = arrival_times(netlist, delays, "max")
    return float(max(arrivals[node_id] for node_id in netlist.output_ids))


def shortest_path_delay(netlist: Netlist, delays: np.ndarray) -> float:
    """Shortest static path delay to any primary output."""
    arrivals = arrival_times(netlist, delays, "min")
    return float(min(arrivals[node_id] for node_id in netlist.output_ids))
