"""The ``serve`` and ``client`` CLI families.

``python -m repro.experiments serve --state-dir DIR`` boots the service
and prints ``READY <port>`` on stdout once the listener is bound — the
same boot handshake the remote fleet workers use, so scripts (and the
CI job) can grab the ephemeral port without racing the bind.  SIGINT /
SIGTERM shut down gracefully: the running job drains, queued jobs are
blamed ``kind="shutdown"``, nothing is silently lost.

``python -m repro.experiments client <cmd>`` talks to a running
service: ``submit`` (optionally ``--wait`` + ``--out``, the CI smoke
path), ``jobs``/``job``/``report``, ``watch`` (live SSE tail),
``stats``, ``why``.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.runtime.backends import BACKEND_NAMES


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------

def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments serve",
        description="Run the simulation-as-a-service HTTP API.",
    )
    parser.add_argument("--state-dir", required=True,
                        help="persistent service state (job journal, "
                             "report store, per-job events, checkpoints)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (0 = ephemeral; the bound port "
                             "is printed as 'READY <port>')")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker fan-out inside each run (default: 1)")
    parser.add_argument("--backend", choices=("auto",) + BACKEND_NAMES,
                        default="auto",
                        help="execution backend per run (default: auto)")
    parser.add_argument("--workers", action="append", default=[],
                        metavar="HOST:PORT",
                        help="remote worker address for --backend remote "
                             "(repeatable)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="per-experiment retry budget (default: 0)")
    parser.add_argument("--ledger-dir",
                        help="run-ledger directory (default: "
                             "<state-dir>/ledger)")
    return parser


async def _serve(args: argparse.Namespace) -> int:
    from repro.service.server import make_service

    server = make_service(
        args.state_dir,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        backend=args.backend,
        workers=tuple(args.workers),
        retries=args.retries,
        ledger_dir=args.ledger_dir,
    )
    port = await server.start()
    # the worker-fleet boot handshake: scripts wait for this line
    print(f"READY {port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    serve_task = asyncio.ensure_future(server.serve_forever())
    await stop.wait()
    print("shutting down: draining the running job", flush=True)
    serve_task.cancel()
    await server.stop()
    print("service stopped", flush=True)
    return 0


def serve_main(argv: list[str]) -> int:
    args = _build_serve_parser().parse_args(argv)
    if args.jobs < 0:
        print("serve: --jobs must be >= 0", file=sys.stderr)
        return 2
    if args.backend == "remote" and not args.workers:
        print("serve: --backend remote requires --workers HOST:PORT",
              file=sys.stderr)
        return 2
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 0


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------

def _build_client_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments client",
        description="Talk to a running simulation service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser("submit", help="submit an experiment request")
    submit.add_argument("experiments", nargs="+",
                        help="experiment ids or 'all'")
    submit.add_argument("--full", action="store_true",
                        help="full-scale configuration (default: fast)")
    submit.add_argument("--format", choices=("text", "json", "csv"),
                        default="json")
    submit.add_argument("--cycles", type=int, help="override trace length")
    submit.add_argument("--width", type=int, help="override ALU width")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job is terminal")
    submit.add_argument("--out",
                        help="with --wait: write the fetched report here "
                             "(raw bytes, byte-identical to the CLI)")

    jobs = sub.add_parser("jobs", help="list all jobs")
    del jobs

    job = sub.add_parser("job", help="show one job")
    job.add_argument("id")

    report = sub.add_parser("report", help="fetch a job's report")
    report.add_argument("id")
    report.add_argument("--out", help="write here instead of stdout")

    watch = sub.add_parser("watch", help="tail a job's event stream (SSE)")
    watch.add_argument("id")

    stats = sub.add_parser("stats", help="job counters and states")
    del stats

    why = sub.add_parser("why", help="choke blame for one cycle of a job")
    why.add_argument("id")
    why.add_argument("--cycle", type=int, required=True)
    why.add_argument("--experiment")
    why.add_argument("--benchmark", default="mcf")
    why.add_argument("--corner", default="NTC")
    return parser


def client_main(argv: list[str]) -> int:
    import json

    from repro.obs.events import format_event
    from repro.service.client import ServiceClient, ServiceError

    args = _build_client_parser().parse_args(argv)
    client = ServiceClient(args.host, args.port)
    try:
        if args.command == "submit":
            doc = client.submit(
                args.experiments, fast=not args.full, fmt=args.format,
                cycles=args.cycles, width=args.width,
            )
            print(f"{doc['id']} {doc['state']} "
                  f"({doc['disposition']}, digest {doc['digest']})")
            if args.wait:
                doc = client.wait(doc["id"])
                print(f"{doc['id']} {doc['state']} "
                      f"ok={doc['summary'].get('ok', '?')}/"
                      f"{doc['summary'].get('total', '?')}"
                      if doc["state"] == "done" else
                      f"{doc['id']} failed "
                      f"({(doc.get('error') or {}).get('kind', '?')})")
                if doc["state"] == "failed":
                    return 1
                if args.out:
                    with open(args.out, "wb") as handle:
                        handle.write(client.report(doc["id"]))
                    print(f"report written to {args.out}")
            return 0
        if args.command == "jobs":
            for doc in client.jobs():
                print(f"{doc['id']} {doc['state']:8s} "
                      f"{','.join(doc['experiments'])} "
                      f"fmt={doc['fmt']} digest={doc['digest']}"
                      + (f" dedup_of={doc['dedup_of']}"
                         if doc.get("dedup_of") else ""))
            return 0
        if args.command == "job":
            print(json.dumps(client.job(args.id), indent=2, sort_keys=True))
            return 0
        if args.command == "report":
            payload = client.report(args.id)
            if args.out:
                with open(args.out, "wb") as handle:
                    handle.write(payload)
                print(f"report written to {args.out} ({len(payload)} bytes)")
            else:
                sys.stdout.buffer.write(payload)
            return 0
        if args.command == "watch":
            for event in client.events(args.id):
                if "__done__" in event:
                    print(f"[stream end: job {event['__done__']['state']}]")
                else:
                    print(format_event(event))
            return 0
        if args.command == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        doc = client.why(args.id, args.cycle, experiment=args.experiment,
                         benchmark=args.benchmark, corner=args.corner)
        print(f"audit why: {doc['experiment']} "
              f"({doc['benchmark']}@{doc['corner']}), cycle {doc['cycle']}")
        for line in doc["lines"]:
            print(f"  {line}")
        return 0
    except ServiceError as exc:
        print(f"client: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"client: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    except TimeoutError as exc:
        print(f"client: {exc}", file=sys.stderr)
        return 1
