"""The asyncio HTTP/JSON front-end of the service.

Hand-rolled HTTP/1.1 on :func:`asyncio.start_server` — the stdlib's
``http.server`` is synchronous and the SSE progress stream needs a real
event loop, so the service speaks just enough HTTP itself (one request
per connection, ``Connection: close``) rather than growing a framework
dependency.

Routes::

    POST /jobs                submit a request (JSON body, CLI vocabulary)
    GET  /jobs                list all jobs, submission order
    GET  /jobs/<id>           one job document
    GET  /jobs/<id>/report    the rendered report bytes (byte-identical
                              to the CLI's --out for the same request)
    GET  /jobs/<id>/events    live SSE progress: tails the job's
                              structured event stream until terminal
    GET  /jobs/<id>/why       gate-level choke blame for one cycle of a
                              job's configuration (audit `why` over HTTP)
    GET  /ledger              run-ledger records (?limit=N)
    GET  /ledger/diff?a=&b=   structural diff of two ledger runs
    GET  /dashboard           the self-contained HTML dashboard
    GET  /stats               job counters (incl. dedup_hits) + states
    GET  /healthz             liveness probe

Every error is JSON (``{"error": ...}``) with a proper status code:
malformed requests are 400s, unknown jobs/paths 404s, wrong methods
405s — a confused client is told so, never hung up on.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.obs import trends
from repro.obs.dashboard import render_dashboard
from repro.runtime.log import get_logger

from repro.service.jobs import Job, JobTable, normalize_request
from repro.service.scheduler import JobRunner

logger = get_logger("service")

#: request bodies above this are rejected (the submit payload is tiny).
MAX_BODY_BYTES = 1 << 20

#: content type per report format.
_REPORT_CONTENT_TYPE = {
    "text": "text/plain; charset=utf-8",
    "json": "application/json",
    "csv": "text/csv; charset=utf-8",
}

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: SSE tail poll period — cheap enough to feel live, coarse enough to
#: stay off the profiler.
SSE_POLL_S = 0.05


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _job_doc(job: Job) -> dict[str, Any]:
    doc = job.to_dict()
    doc["links"] = {
        "self": f"/jobs/{job.id}",
        "report": f"/jobs/{job.id}/report",
        "events": f"/jobs/{job.id}/events",
    }
    return doc


class ServiceServer:
    """One bound listener over a job table + runner pair."""

    def __init__(
        self,
        table: JobTable,
        runner: JobRunner,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.table = table
        self.runner = runner
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self.started_ts = time.time()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> int:
        """Bind and listen; returns the bound port (``port=0`` works)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, then drain the runner (jobs never lost)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await asyncio.get_running_loop().run_in_executor(
            None, self.runner.shutdown
        )

    # -- connection handling -------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as exc:
                await self._send_json(writer, exc.status, {"error": str(exc)})
                return
            except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                return  # client went away mid-request
            try:
                await self._dispatch(writer, method, path, body)
            except _HttpError as exc:
                await self._send_json(writer, exc.status, {"error": str(exc)})
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # one bad handler must not kill the server
                logger.error("handler error for %s %s: %s", method, path, exc)
                await self._send_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpError(400, f"body too large (max {MAX_BODY_BYTES} bytes)")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    # -- routing -------------------------------------------------------
    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        body: bytes,
    ) -> None:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        segments = [s for s in path.split("/") if s]

        if path == "/healthz":
            self._require(method, "GET")
            await self._send_json(writer, 200, {
                "status": "ok", "uptime_s": round(time.time() - self.started_ts, 3),
            })
        elif path == "/stats":
            self._require(method, "GET")
            await self._send_json(writer, 200, self.table.stats())
        elif path == "/jobs":
            if method == "POST":
                await self._post_job(writer, body)
            elif method == "GET":
                await self._send_json(writer, 200, {
                    "jobs": [_job_doc(j) for j in self.table.jobs()],
                })
            else:
                raise _HttpError(405, "use GET or POST on /jobs")
        elif len(segments) >= 2 and segments[0] == "jobs":
            self._require(method, "GET")
            job = self.table.get(segments[1])
            if job is None:
                raise _HttpError(404, f"no such job {segments[1]!r}")
            tail = segments[2] if len(segments) > 2 else ""
            if len(segments) > 3:
                raise _HttpError(404, f"unknown path {path!r}")
            if tail == "":
                await self._send_json(writer, 200, _job_doc(job))
            elif tail == "report":
                await self._get_report(writer, job)
            elif tail == "events":
                await self._stream_events(writer, job)
            elif tail == "why":
                await self._get_why(writer, job, query)
            else:
                raise _HttpError(404, f"unknown path {path!r}")
        elif path == "/ledger":
            self._require(method, "GET")
            records = self.runner.ledger.records()
            limit = self._int_query(query, "limit", len(records))
            await self._send_json(writer, 200, {
                "total": len(records),
                "records": records[-limit:] if limit >= 0 else records,
            })
        elif path == "/ledger/diff":
            self._require(method, "GET")
            await self._get_ledger_diff(writer, query)
        elif path == "/dashboard":
            self._require(method, "GET")
            payload = render_dashboard(self.runner.ledger.records())
            await self._send(writer, 200, payload.encode(),
                             "text/html; charset=utf-8")
        else:
            raise _HttpError(404, f"unknown path {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    @staticmethod
    def _int_query(query: dict[str, str], key: str, default: int) -> int:
        try:
            return int(query.get(key, default))
        except ValueError:
            raise _HttpError(400, f"query parameter {key!r} must be an "
                                  "integer") from None

    # -- handlers ------------------------------------------------------
    async def _post_job(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        try:
            payload = json.loads(body.decode())
        except (ValueError, UnicodeDecodeError):
            raise _HttpError(400, "request body must be valid JSON") from None
        try:
            config, ids, fmt = normalize_request(payload)
        except ValueError as exc:
            raise _HttpError(400, str(exc)) from None
        # submit() touches the journal (blocking I/O) — keep it off the loop
        job, disposition = await asyncio.get_running_loop().run_in_executor(
            None, self.table.submit, config, ids, fmt
        )
        if disposition == "queued":
            self.runner.enqueue(job)
        doc = _job_doc(job)
        doc["disposition"] = disposition
        await self._send_json(writer, 202 if disposition == "queued" else 200, doc)

    async def _get_report(self, writer: asyncio.StreamWriter, job: Job) -> None:
        if job.state == "failed":
            raise _HttpError(409, f"job {job.id} failed "
                                  f"({(job.error or {}).get('kind', '?')}); "
                                  "no report was produced")
        if job.state != "done":
            raise _HttpError(404, f"job {job.id} is {job.state}; "
                                  "report not available yet")
        path = self.table.report_path(job.digest, job.fmt)
        try:
            payload = path.read_bytes()
        except OSError:
            raise _HttpError(404, f"report for job {job.id} is no longer "
                                  "in the store") from None
        await self._send(writer, 200, payload, _REPORT_CONTENT_TYPE[job.fmt])

    async def _get_why(
        self, writer: asyncio.StreamWriter, job: Job, query: dict[str, str]
    ) -> None:
        """Gate-level choke blame for one cycle of this job's config."""
        from argparse import Namespace

        from repro.experiments.audit_cli import _experiment_blame

        if "cycle" not in query:
            raise _HttpError(400, "query parameter 'cycle' is required")
        cycle = self._int_query(query, "cycle", 0)
        experiment = query.get("experiment", job.experiments[0])
        if experiment not in job.experiments:
            raise _HttpError(400, f"experiment {experiment!r} is not part "
                                  f"of job {job.id}")
        args = Namespace(
            experiment=experiment,
            cycle=cycle,
            benchmark=query.get("benchmark", "mcf"),
            corner=query.get("corner", "NTC"),
            chip_seed=None,
            fast=job.config.get("width") != 32,
            checkpoint_dir=str(self.table.root / "checkpoints"),
        )
        loop = asyncio.get_running_loop()
        try:
            lines = await loop.run_in_executor(None, _experiment_blame, args)
        except SystemExit as exc:
            raise _HttpError(400, str(exc)) from None
        await self._send_json(writer, 200, {
            "job": job.id, "experiment": experiment, "cycle": cycle,
            "benchmark": args.benchmark, "corner": args.corner,
            "lines": [line.strip() for line in lines],
        })

    async def _get_ledger_diff(
        self, writer: asyncio.StreamWriter, query: dict[str, str]
    ) -> None:
        run_a, run_b = query.get("a"), query.get("b")
        if not run_a or not run_b:
            raise _HttpError(400, "query parameters 'a' and 'b' are required")
        try:
            record_a = self.runner.ledger.resolve(run_a)
            record_b = self.runner.ledger.resolve(run_b)
        except LookupError as exc:
            raise _HttpError(404, str(exc)) from None
        result = trends.diff_records(record_a, record_b)
        # JSON has no Infinity: the "new metric" sentinel becomes null.
        for entry in result.get("changed", {}).values():
            if entry.get("rel") == float("inf"):
                entry["rel"] = None
        await self._send_json(writer, 200, result)

    # -- SSE -----------------------------------------------------------
    async def _stream_events(
        self, writer: asyncio.StreamWriter, job: Job
    ) -> None:
        """Tail the job's event stream as Server-Sent Events.

        Replays everything already in the file, then polls for new
        whole lines until the job reaches a terminal state and the file
        is drained.  The crash-tolerant reader semantics match
        :func:`repro.obs.events.iter_events`: a truncated tail (a
        writer caught mid-append) is simply not emitted until its
        newline arrives — and if it never does, the stream still
        terminates cleanly at the job's terminal state.
        """
        source = job.dedup_of or job.id  # dedup hits replay the original run
        events_path = self.table.events_path(source)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        offset = 0
        pending = b""
        while True:
            current = self.table.get(job.id)
            terminal = current is None or current.state in ("done", "failed")
            chunk = b""
            try:
                with open(events_path, "rb") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
            except OSError:
                pass
            if chunk:
                offset += len(chunk)
                pending += chunk
                *lines, pending = pending.split(b"\n")
                for line in lines:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        json.loads(line)  # replay only parseable events
                    except ValueError:
                        continue
                    writer.write(b"data: " + line + b"\n\n")
                await writer.drain()
            elif terminal:
                state = current.state if current is not None else "unknown"
                done = json.dumps({"id": job.id, "state": state},
                                  sort_keys=True)
                writer.write(b"event: done\ndata: " + done.encode() + b"\n\n")
                await writer.drain()
                return
            else:
                await asyncio.sleep(SSE_POLL_S)

    # -- response plumbing ---------------------------------------------
    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, doc: dict[str, Any]
    ) -> None:
        payload = (json.dumps(doc, sort_keys=True) + "\n").encode()
        await self._send(writer, status, payload, "application/json")

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str,
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + payload)
        await writer.drain()


def make_service(
    root: str,
    host: str = "127.0.0.1",
    port: int = 0,
    jobs: int = 1,
    backend: str = "auto",
    workers: tuple[str, ...] = (),
    retries: int = 0,
    ledger_dir: str | None = None,
) -> ServiceServer:
    """Wire table + runner + server over one state directory."""
    table = JobTable(root)
    runner = JobRunner(
        table,
        ledger_dir=ledger_dir,
        jobs=jobs,
        backend=backend,
        workers=workers,
        retries=retries,
    )
    return ServiceServer(table, runner, host=host, port=port)


class ServiceThread:
    """A service running on a background thread (tests, QA oracle).

    Boots the asyncio loop + server off-thread, exposes the bound port,
    and tears everything down (graceful: drains the running job, blames
    the queued ones) on :meth:`stop`.
    """

    def __init__(self, root: str, **kwargs: Any) -> None:
        import threading

        self.server = make_service(root, **kwargs)
        self.port: int = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="service-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")

    @property
    def table(self) -> JobTable:
        return self.server.table

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.port = await self.server.start()
        self._stopped = asyncio.Event()
        self._ready.set()
        await self._stopped.wait()
        await self.server.stop()

    def stop(self) -> None:
        loop = self._loop
        if loop is None or not self._thread.is_alive():
            return
        loop.call_soon_threadsafe(self._stopped.set)
        self._thread.join(timeout=60)
