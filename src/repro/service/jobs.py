"""The persistent job table: dedup, single-flight, crash-safe journal.

A *job* is one experiment request — a configuration, an ordered list of
experiment ids, and a report format.  The table's contract:

* **Dedup by request digest.**  :func:`request_digest` fingerprints the
  complete request (config knobs + experiment ids in order + format).
  A submission whose digest matches a completed job with its report
  still in the store is recorded as an immediately-``done`` job pointing
  at the same report bytes — no recompute (``dedup_hits`` counts these).
* **Single-flight coalescing.**  A submission whose digest matches a
  job that is still queued or running returns *that* job — concurrent
  duplicates ride the same execution (``dedup_joined`` counts these).
* **No job is ever silently lost.**  Every submission and every state
  transition is one crash-safe JSONL append
  (:func:`repro.obs.ledger.append_jsonl_line`) to ``jobs.jsonl``.  Boot
  recovery folds the journal; jobs the previous process left queued or
  running are blamed with a ``FailureRecord``-shaped payload of kind
  ``"lost"``, and a graceful shutdown blames its unfinished jobs with
  kind ``"shutdown"`` — either way the journal says what happened.

Report bytes live in ``reports/<digest>.<ext>`` (content keyed by the
request digest, so a dedup hit serves the exact bytes the original run
wrote), and each executed job's structured event stream lives in
``jobs/<id>/events.jsonl`` for the SSE tail.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import EXPERIMENTS
from repro.obs.events import iter_events
from repro.obs.ledger import append_jsonl_line
from repro.runtime.checkpoint import config_fingerprint

#: the job lifecycle; ``failed`` means the *machinery* broke (shutdown,
#: lost, exception) — a run whose experiments failed still reaches
#: ``done`` with its report, exactly like the CLI's non-zero exit path.
JOB_STATES = ("queued", "running", "done", "failed")

#: journal file inside a service state directory.
JOBS_FILENAME = "jobs.jsonl"

#: report-format -> file extension in the report store.
_FORMAT_EXT = {"text": "txt", "json": "json", "csv": "csv"}


def request_digest(config: ExperimentConfig, experiments: list[str] | tuple[str, ...],
                   fmt: str) -> str:
    """Fingerprint of the *complete* request.

    The ledger's ``config_digest`` alone is not a dedup key — two
    requests with the same knobs but different experiment lists (or a
    different report format) must never serve each other's bytes — so
    the digest covers config + ordered ids + format.
    """
    return config_fingerprint({
        "config": dataclasses.asdict(config),
        "experiments": list(experiments),
        "format": fmt,
    })


@dataclass
class Job:
    """One submitted experiment request and its lifecycle state."""

    id: str
    digest: str
    experiments: tuple[str, ...]
    fmt: str
    config: dict[str, Any]
    state: str = "queued"
    created_ts: float = 0.0
    started_ts: float | None = None
    finished_ts: float | None = None
    #: id of the executed job whose report this one reuses (dedup hits).
    dedup_of: str | None = None
    #: FailureRecord-shaped blame dict when state == "failed".
    error: dict[str, Any] | None = None
    #: run-summary numbers once done: {"ok": N, "total": M}.
    summary: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        doc = dataclasses.asdict(self)
        doc["experiments"] = list(self.experiments)
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Job":
        doc = dict(doc)
        doc["experiments"] = tuple(doc.get("experiments", ()))
        return cls(**doc)


def normalize_request(payload: dict[str, Any]) -> tuple[ExperimentConfig, tuple[str, ...], str]:
    """Validate and canonicalise one submit payload.

    Accepts the CLI's vocabulary — ``experiments`` (ids or ``"all"``),
    ``fast``, ``cycles``/``width`` overrides, ``format`` — and returns
    the same ``(config, ids, fmt)`` the CLI would run, so the request
    digest is a function of *what would execute*, not of request
    spelling.  Raises ``ValueError`` on anything malformed (the server
    maps that to a 400).
    """
    from repro.experiments.config import DEFAULT_CONFIG, FAST_CONFIG

    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    raw_ids = payload.get("experiments")
    if not isinstance(raw_ids, list) or not raw_ids:
        raise ValueError("'experiments' must be a non-empty list of ids")
    if any(not isinstance(i, str) for i in raw_ids):
        raise ValueError("'experiments' entries must be strings")
    ids = tuple(EXPERIMENTS) if "all" in raw_ids else tuple(raw_ids)
    for experiment_id in ids:
        if experiment_id not in EXPERIMENTS:
            raise ValueError(f"unknown experiment {experiment_id!r}")
    fmt = payload.get("format", "json")
    if fmt not in _FORMAT_EXT:
        raise ValueError(f"unknown format {fmt!r} (known: {tuple(_FORMAT_EXT)})")
    config = FAST_CONFIG if payload.get("fast", True) else DEFAULT_CONFIG
    overrides = {}
    for knob in ("cycles", "width"):
        value = payload.get(knob)
        if value is None:
            continue
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"'{knob}' must be an integer")
        overrides[knob] = value
    try:
        if overrides:
            config = dataclasses.replace(config, **overrides)
    except ValueError as exc:
        raise ValueError(f"invalid configuration: {exc}") from exc
    unknown = set(payload) - {"experiments", "fast", "cycles", "width", "format"}
    if unknown:
        raise ValueError(f"unknown request field(s): {sorted(unknown)}")
    return config, ids, fmt


class JobTable:
    """Thread-safe persistent job store under one state directory."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "reports").mkdir(exist_ok=True)
        (self.root / "jobs").mkdir(exist_ok=True)
        self.path = self.root / JOBS_FILENAME
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._seq = 0
        self.counters: dict[str, int] = {
            "submitted": 0,
            "executed": 0,
            "dedup_hits": 0,
            "dedup_joined": 0,
            "failed": 0,
            "recovered_lost": 0,
        }
        self._recover()

    # -- paths ---------------------------------------------------------
    def report_path(self, digest: str, fmt: str) -> Path:
        return self.root / "reports" / f"{digest}.{_FORMAT_EXT[fmt]}"

    def events_path(self, job_id: str) -> Path:
        return self.root / "jobs" / job_id / "events.jsonl"

    # -- boot recovery -------------------------------------------------
    def _recover(self) -> None:
        """Fold the journal; blame interrupted jobs as kind="lost"."""
        for record in iter_events(self.path):
            kind = record.get("kind")
            if kind == "job":
                try:
                    job = Job.from_dict(record["job"])
                except (KeyError, TypeError):
                    continue
                self._jobs[job.id] = job
                if job.dedup_of is not None:
                    self.counters["dedup_hits"] += 1
            elif kind == "state":
                job = self._jobs.get(record.get("id", ""))
                if job is None or record.get("state") not in JOB_STATES:
                    continue
                job.state = record["state"]
                job.started_ts = record.get("started_ts", job.started_ts)
                job.finished_ts = record.get("finished_ts", job.finished_ts)
                job.error = record.get("error", job.error)
                job.summary = record.get("summary", job.summary)
        self.counters["submitted"] = len(self._jobs)
        for job in self._jobs.values():
            if job.state == "done" and job.dedup_of is None:
                self.counters["executed"] += 1
            elif job.state == "failed":
                self.counters["failed"] += 1
            elif job.state in ("queued", "running"):
                # the previous process died with this job in flight;
                # never silently lose it — blame it on the record.
                self._transition_locked(
                    job,
                    "failed",
                    error={
                        "experiment_id": "*",
                        "kind": "lost",
                        "error_type": "ServiceRestart",
                        "message": f"job was {job.state} when the service "
                                   f"process exited",
                        "traceback": "",
                        "config_fingerprint": job.digest,
                        "elapsed_s": 0.0,
                        "attempts": 1,
                    },
                )
                self.counters["failed"] += 1
                self.counters["recovered_lost"] += 1
        if self._jobs:
            self._seq = max(
                (int(job_id[1:]) for job_id in self._jobs
                 if job_id[0] == "j" and job_id[1:].isdigit()),
                default=0,
            )

    # -- journal -------------------------------------------------------
    def _append(self, record: dict[str, Any]) -> None:
        append_jsonl_line(self.path, record)

    def _transition_locked(self, job: Job, state: str, **fields: Any) -> None:
        job.state = state
        record: dict[str, Any] = {
            "kind": "state", "id": job.id, "state": state,
            "ts": round(time.time(), 6),
        }
        for key, value in fields.items():
            if value is not None:
                setattr(job, key, value)
                record[key] = value
        self._append(record)

    # -- submission ----------------------------------------------------
    def submit(
        self, config: ExperimentConfig, experiments: tuple[str, ...], fmt: str
    ) -> tuple[Job, str]:
        """Register one request; returns ``(job, disposition)``.

        Disposition is ``"queued"`` (fresh work), ``"dedup_hit"`` (done
        job with live report reused — the returned job is *new* but born
        ``done``), or ``"joined"`` (an in-flight job with the same
        digest is returned — single-flight).
        """
        digest = request_digest(config, experiments, fmt)
        with self._lock:
            # single-flight: an identical request already in flight
            for job in self._jobs.values():
                if job.digest == digest and job.state in ("queued", "running"):
                    self.counters["dedup_joined"] += 1
                    return job, "joined"
            # dedup: an identical request already completed with its
            # report bytes still in the store
            done = self._find_done_locked(digest)
            self._seq += 1
            job = Job(
                id=f"j{self._seq:05d}",
                digest=digest,
                experiments=tuple(experiments),
                fmt=fmt,
                config=dataclasses.asdict(config),
                created_ts=round(time.time(), 6),
            )
            disposition = "queued"
            if done is not None:
                job.state = "done"
                job.finished_ts = job.created_ts
                job.dedup_of = done.dedup_of or done.id
                job.summary = dict(done.summary)
                self.counters["dedup_hits"] += 1
                disposition = "dedup_hit"
            self._jobs[job.id] = job
            self.counters["submitted"] += 1
            self._append({"kind": "job", "job": job.to_dict()})
            return job, disposition

    def _find_done_locked(self, digest: str) -> Job | None:
        for job in self._jobs.values():
            if (
                job.state == "done"
                and job.digest == digest
                and self.report_path(digest, job.fmt).exists()
            ):
                return job
        return None

    # -- lifecycle -----------------------------------------------------
    def mark_running(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs[job_id]
            self._transition_locked(job, "running",
                                    started_ts=round(time.time(), 6))

    def mark_done(self, job_id: str, summary: dict[str, int]) -> None:
        with self._lock:
            job = self._jobs[job_id]
            self.counters["executed"] += 1
            self._transition_locked(job, "done",
                                    finished_ts=round(time.time(), 6),
                                    summary=summary)

    def mark_failed(self, job_id: str, error: dict[str, Any]) -> None:
        with self._lock:
            job = self._jobs[job_id]
            self.counters["failed"] += 1
            self._transition_locked(job, "failed",
                                    finished_ts=round(time.time(), 6),
                                    error=error)

    def blame_shutdown(self, job_id: str) -> None:
        """Graceful-shutdown blame for a job that never got to run."""
        with self._lock:
            job = self._jobs[job_id]
            if job.state not in ("queued", "running"):
                return
            self.counters["failed"] += 1
            self._transition_locked(
                job,
                "failed",
                finished_ts=round(time.time(), 6),
                error={
                    "experiment_id": "*",
                    "kind": "shutdown",
                    "error_type": "ServiceShutdown",
                    "message": "service shut down before the job finished",
                    "traceback": "",
                    "config_fingerprint": job.digest,
                    "elapsed_s": 0.0,
                    "attempts": 1,
                },
            )

    # -- queries -------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """All jobs in submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.id)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            states: dict[str, int] = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {"counters": dict(self.counters), "states": states}
