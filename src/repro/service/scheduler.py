"""The scheduler bridge: job table -> ExecutorBackend fleet.

One worker thread drains accepted jobs sequentially, off the asyncio
event loop.  Sequential on purpose: the structured-event sink
(:func:`repro.obs.enable_events`) is process-global — one events file
per run — so one run executes at a time while the *inside* of a run
fans out across the configured backend (``--jobs``/``--backend`` exactly
as on the CLI, including the remote worker fleet).

Per executed job the runner:

1. enables a fresh per-job :class:`~repro.obs.events.EventLog` at
   ``jobs/<id>/events.jsonl`` (the file the SSE endpoint tails),
2. runs the request through
   :func:`repro.runtime.backends.resolve_backend` with a
   :class:`~repro.runtime.WorkerSpec` built exactly as the CLI builds
   one,
3. renders the report through the *shared*
   :func:`repro.experiments.reportio.render_report` and atomically
   writes it into the report store — this is the byte-identity
   guarantee: the service serves the same renderer's bytes,
4. appends one run-ledger record (``notes="service:<job id>"``) so the
   run history and dashboard cover service runs too.

Shutdown drains the in-flight job (it completes and is journaled), then
blames every still-queued job with a ``FailureRecord``-shaped payload of
kind ``"shutdown"`` — a stopped service never silently loses work.
"""

from __future__ import annotations

import queue
import threading
import traceback

from repro import obs
from repro.experiments.config import ExperimentConfig
from repro.experiments.reportio import atomic_write_text, render_report
from repro.obs.ledger import RunLedger, build_record
from repro.runtime import WorkerSpec, default_jobs
from repro.runtime.backends import RemoteOptions, resolve_backend
from repro.runtime.log import get_logger

from repro.service.jobs import Job, JobTable

logger = get_logger("service")

_STOP = object()


class JobRunner:
    """Sequential job executor on a daemon worker thread."""

    def __init__(
        self,
        table: JobTable,
        ledger_dir: str | None = None,
        jobs: int = 1,
        backend: str = "auto",
        workers: tuple[str, ...] = (),
        retries: int = 0,
    ) -> None:
        self.table = table
        self.ledger = RunLedger(ledger_dir or table.root / "ledger")
        self.jobs = jobs or default_jobs()
        backend_name = backend
        if backend_name == "auto":
            backend_name = "inproc" if self.jobs == 1 else "procpool"
        if backend_name == "remote" and not workers:
            raise ValueError("backend 'remote' requires worker addresses")
        self.backend_name = backend_name
        self.workers = tuple(workers)
        self.retries = retries
        self._queue: queue.Queue = queue.Queue()
        self._stopping = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="service-runner", daemon=True
        )
        self._thread.start()

    # -- intake --------------------------------------------------------
    def enqueue(self, job: Job) -> None:
        self._queue.put(job.id)

    # -- shutdown ------------------------------------------------------
    def shutdown(self, timeout_s: float = 60.0) -> None:
        """Drain the running job, then blame everything still queued."""
        self._stopping.set()
        self._queue.put(_STOP)
        self._thread.join(timeout=timeout_s)
        for job in self.table.jobs():
            if job.state in ("queued", "running"):
                self.table.blame_shutdown(job.id)

    # -- the worker loop -----------------------------------------------
    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            if self._stopping.is_set():
                continue  # shutdown() will blame it
            job = self.table.get(item)
            if job is None or job.state != "queued":
                continue
            try:
                self._execute(job)
            except BaseException as exc:  # the job machinery broke
                logger.error("job %s failed: %s", job.id, exc)
                self.table.mark_failed(job.id, {
                    "experiment_id": "*",
                    "kind": "exception",
                    "error_type": type(exc).__name__,
                    "message": str(exc),
                    "traceback": traceback.format_exc(),
                    "config_fingerprint": job.digest,
                    "elapsed_s": 0.0,
                    "attempts": 1,
                })

    def _execute(self, job: Job) -> None:
        self.table.mark_running(job.id)
        config = ExperimentConfig(**{
            **job.config, "benchmarks": tuple(job.config["benchmarks"]),
        })
        events_path = self.table.events_path(job.id)
        events_path.parent.mkdir(parents=True, exist_ok=True)
        trace_id = obs.new_trace_id()
        obs.enable_events(obs.EventLog(events_path, trace_id=trace_id))
        checkpoint_dir = str(self.table.root / "checkpoints")
        spec = WorkerSpec(
            config=config,
            checkpoint_dir=checkpoint_dir,
            resume=True,
            retries=self.retries,
            trace_id=trace_id,
            events_path=str(events_path),
        )
        remote_options = None
        if self.backend_name == "remote":
            remote_options = RemoteOptions(workers=self.workers)
        backend = resolve_backend(self.backend_name, remote_options=remote_options)
        obs.emit(
            "run_start",
            backend=self.backend_name,
            jobs=self.jobs,
            experiments=len(job.experiments),
        )
        try:
            report, _stats = backend.run(
                list(job.experiments), spec, jobs=self.jobs
            )
            obs.emit(
                "run_end",
                status="ok" if report.ok else "failed",
                ok=len(report.outcomes) - len(report.failures),
                total=len(report.outcomes),
            )
        finally:
            log = obs.get_event_log()
            obs.disable_events()
            if log is not None:
                log.close()

        payload = render_report(report, job.fmt)
        atomic_write_text(
            str(self.table.report_path(job.digest, job.fmt)), payload
        )
        record = build_record(
            report=report,
            metrics_doc={},
            config=config,
            trace_id=trace_id,
            notes=f"service:{job.id}",
        )
        self.ledger.append(record)
        self.table.mark_done(job.id, {
            "ok": len(report.outcomes) - len(report.failures),
            "total": len(report.outcomes),
        })
        logger.info("job %s done (%d experiment(s))", job.id, len(job.experiments))
