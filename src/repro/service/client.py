"""Thin stdlib HTTP client for the service.

Built on :class:`http.client.HTTPConnection` (one connection per
request — the server is ``Connection: close``) so the CLI, the test
suite, the QA oracle, and the CI smoke all consume the service exactly
the way an external user would: over the wire, no shortcuts through
the job table.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator


class ServiceError(Exception):
    """A non-2xx response; carries the HTTP status and server message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """One service endpoint (``host:port``) as a Python object."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout_s: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- plumbing ------------------------------------------------------
    def _request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> tuple[int, bytes, str]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return response.status, data, response.getheader("Content-Type", "")
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              body: dict[str, Any] | None = None) -> dict[str, Any]:
        status, data, _ = self._request(method, path, body)
        try:
            doc = json.loads(data.decode())
        except (ValueError, UnicodeDecodeError):
            doc = {"error": data.decode(errors="replace")[:200]}
        if status >= 400:
            raise ServiceError(status, doc.get("error", "unknown error"))
        return doc

    # -- API -----------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self._json("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        return self._json("GET", "/stats")

    def submit(self, experiments: list[str], fast: bool = True,
               fmt: str = "json", cycles: int | None = None,
               width: int | None = None) -> dict[str, Any]:
        body: dict[str, Any] = {
            "experiments": experiments, "fast": fast, "format": fmt,
        }
        if cycles is not None:
            body["cycles"] = cycles
        if width is not None:
            body["width"] = width
        return self._json("POST", "/jobs", body)

    def jobs(self) -> list[dict[str, Any]]:
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def report(self, job_id: str) -> bytes:
        """The raw report bytes — never re-encoded, for byte-identity."""
        status, data, _ = self._request("GET", f"/jobs/{job_id}/report")
        if status >= 400:
            try:
                message = json.loads(data.decode()).get("error", "")
            except (ValueError, UnicodeDecodeError):
                message = data.decode(errors="replace")[:200]
            raise ServiceError(status, message)
        return data

    def why(self, job_id: str, cycle: int, experiment: str | None = None,
            benchmark: str = "mcf", corner: str = "NTC") -> dict[str, Any]:
        path = (f"/jobs/{job_id}/why?cycle={cycle}"
                f"&benchmark={benchmark}&corner={corner}")
        if experiment:
            path += f"&experiment={experiment}"
        return self._json("GET", path)

    def ledger(self, limit: int | None = None) -> dict[str, Any]:
        path = "/ledger" + (f"?limit={limit}" if limit is not None else "")
        return self._json("GET", path)

    def ledger_diff(self, run_a: str, run_b: str) -> dict[str, Any]:
        return self._json("GET", f"/ledger/diff?a={run_a}&b={run_b}")

    def wait(self, job_id: str, timeout_s: float = 300.0,
             poll_s: float = 0.1) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the doc."""
        deadline = time.monotonic() + timeout_s
        while True:
            doc = self.job(job_id)
            if doc["state"] in ("done", "failed"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['state']} after {timeout_s}s"
                )
            time.sleep(poll_s)

    def events(self, job_id: str,
               timeout_s: float = 300.0) -> Iterator[dict[str, Any]]:
        """The job's SSE stream, decoded frame by frame.

        Yields each ``data:`` payload as a dict; the final frame is the
        server's ``event: done`` notification, yielded as
        ``{"__done__": {...}}`` so callers can tell stream-end from an
        ordinary event.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout_s
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    message = json.loads(data.decode()).get("error", "")
                except (ValueError, UnicodeDecodeError):
                    message = ""
                raise ServiceError(response.status, message)
            event_name = ""
            for raw in response:
                line = raw.strip()
                if not line:
                    event_name = ""
                    continue
                if line.startswith(b"event:"):
                    event_name = line[len(b"event:"):].strip().decode()
                    continue
                if not line.startswith(b"data:"):
                    continue
                try:
                    payload = json.loads(line[len(b"data:"):].strip())
                except ValueError:
                    continue
                if event_name == "done":
                    yield {"__done__": payload}
                    return
                yield payload
        finally:
            conn.close()
