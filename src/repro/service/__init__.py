"""Simulation-as-a-service: a persistent async job API over the runner.

Every run used to be a cold CLI invocation; this package keeps one
long-lived process serving experiment requests over HTTP/JSON (stdlib
``asyncio`` only — no new dependencies):

* :mod:`repro.service.jobs` — the persistent job table: request-digest
  dedup against the report store + run ledger, single-flight coalescing
  of concurrent duplicate submissions, and a crash-safe JSONL journal so
  a restarted server never silently loses a job.
* :mod:`repro.service.scheduler` — bridges accepted jobs onto the
  existing :class:`~repro.runtime.backends.base.ExecutorBackend` fleet
  (inproc/procpool/remote) on a worker thread, off the event loop.
* :mod:`repro.service.server` — the asyncio HTTP server: job lifecycle
  endpoints, an SSE progress stream tailing the run's structured event
  file, and the ledger/dashboard/audit views served live.
* :mod:`repro.service.client` — a stdlib ``http.client`` consumer used
  by the ``client`` CLI family, the tests, and the CI smoke.

The load-bearing invariant (enforced by ``tests/test_service.py``, the
``service_vs_cli`` QA oracle, and the CI ``service`` job's ``cmp``): a
report fetched through the service is **byte-identical** to the same
configuration run through the CLI.
"""

from repro.service.jobs import JOB_STATES, Job, JobTable, request_digest

__all__ = [
    "JOB_STATES",
    "Job",
    "JobTable",
    "request_digest",
]
