"""Per-cycle timing-error traces: the input every EDAC scheme replays.

The paper's circuit layer produces a "cyclewise sensitised path delay
report" which the "timing error simulation for diverse schemes" then
consumes (§3.4.3).  :func:`build_error_trace` is that hand-off: it runs
the dynamic timing analysis of an instruction trace on one fabricated
chip and packages everything a scheme needs per cycle -- instruction
pair, OWM bits, operand size classes, raw arrival times, and the
classified error.

Alignment convention: entry ``j`` of an :class:`ErrorTrace` describes
*errant cycle* ``j+1`` of the instruction trace -- the sensitising
instruction is ``instrs[j+1]``, the initialising instruction is
``instrs[j]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.arch.operands import operand_size_class, owm_flag
from repro.obs import audit
from repro.arch.trace import InstructionTrace
from repro.circuits.ex_stage import ExStage
from repro.pv.chip import ChipSample, delay_matrix
from repro.timing.dta import ERR_CE, ERR_NONE, ERR_SE_MAX, ERR_SE_MIN


@dataclass
class ErrorTrace:
    """Cycle-wise timing outcome of one (benchmark, chip) run."""

    benchmark: str
    corner: str
    corner_vdd: float  # supply voltage of the corner, volts
    clock_period: float  # ps
    hold_constraint: float  # ps
    instr_sens: np.ndarray  # sensitising instruction opcode per entry
    instr_init: np.ndarray  # initialising instruction opcode per entry
    owm_sens: np.ndarray  # OWM of the sensitising instruction
    owm_init: np.ndarray
    size_a: np.ndarray  # operand size classes of the sensitising instr
    size_b: np.ndarray
    static_ids: np.ndarray  # static-instruction id of the sensitising instr
    t_late: np.ndarray
    t_early: np.ndarray
    err_class: np.ndarray  # ERR_NONE / ERR_SE_MIN / ERR_SE_MAX / ERR_CE

    def __len__(self) -> int:
        return len(self.err_class)

    @property
    def max_err(self) -> np.ndarray:
        """Cycles with a maximum (setup) timing violation."""
        return (self.err_class == ERR_SE_MAX) | (self.err_class == ERR_CE)

    @property
    def min_err(self) -> np.ndarray:
        """Cycles with a minimum (hold) timing violation."""
        return (self.err_class == ERR_SE_MIN) | (self.err_class == ERR_CE)

    @property
    def any_err(self) -> np.ndarray:
        return self.err_class != ERR_NONE

    def error_counts(self) -> dict[str, int]:
        """Histogram of error classes over the trace."""
        return {
            "none": int((self.err_class == ERR_NONE).sum()),
            "se_min": int((self.err_class == ERR_SE_MIN).sum()),
            "se_max": int((self.err_class == ERR_SE_MAX).sum()),
            "ce": int((self.err_class == ERR_CE).sum()),
        }


def _assemble_trace(
    stage: ExStage,
    trace: InstructionTrace,
    timings,
    owm: np.ndarray,
    size_a: np.ndarray,
    size_b: np.ndarray,
) -> ErrorTrace:
    """Classify one chip's timings and package the scheme-facing trace.

    Shared by the scalar and batch builders so both emit identical
    telemetry and identical :class:`ErrorTrace` payloads.
    """
    err_class = timings.classify(stage.clock_period, stage.hold_constraint)

    if obs.enabled():
        obs.inc("etrace.built", benchmark=trace.name, corner=stage.corner.name)
        obs.inc("etrace.cycles", len(err_class))
        for kind, count in (
            ("se_min", int((err_class == ERR_SE_MIN).sum())),
            ("se_max", int((err_class == ERR_SE_MAX).sum())),
            ("ce", int((err_class == ERR_CE).sum())),
        ):
            obs.inc("etrace.errors", count, kind=kind)
        # OWM-triggered cycles at the EX stage: the operand-width
        # mismatch signal DCS/Trident key their tags on.
        obs.inc("choke.owm", int(owm[1:].sum()), stage="EX")

    sink = audit.get()
    if sink is not None:
        # Provenance for the raw DTA classification: one DEC_NONE record
        # per errant cycle, before any scheme acts on it.
        rec = sink.begin_run(
            kind="etrace",
            scheme="",
            benchmark=trace.name,
            corner=stage.corner.name,
            base_cycles=len(err_class),
            clock_period=stage.clock_period,
            hold_constraint=stage.hold_constraint,
            t_late=timings.t_late,
            t_early=timings.t_early,
        )
        for j in np.flatnonzero(err_class):
            rec.decision(int(j), int(err_class[j]), audit.DEC_NONE)
        rec.finish()

    return ErrorTrace(
        benchmark=trace.name,
        corner=stage.corner.name,
        corner_vdd=stage.corner.vdd,
        clock_period=stage.clock_period,
        hold_constraint=stage.hold_constraint,
        instr_sens=trace.instrs[1:].copy(),
        instr_init=trace.instrs[:-1].copy(),
        owm_sens=owm[1:].copy(),
        owm_init=owm[:-1].copy(),
        size_a=size_a[1:].copy(),
        size_b=size_b[1:].copy(),
        static_ids=trace.static_ids[1:].copy(),
        t_late=timings.t_late,
        t_early=timings.t_early,
        err_class=err_class,
    )


def build_error_trace(
    stage: ExStage,
    chip: ChipSample,
    trace: InstructionTrace,
    chunk: int = 2048,
    inputs: np.ndarray | None = None,
) -> ErrorTrace:
    """Run DTA of ``trace`` on ``chip`` and classify every cycle.

    ``inputs`` optionally supplies the pre-encoded primary-input matrix
    (it must equal ``trace.encode_inputs(stage.alu)`` — e.g. a
    shared-memory view published by the fleet parent); encoding is
    deterministic, so supplying it never changes results.
    """
    if trace.width != stage.width:
        raise ValueError(
            f"trace width {trace.width} does not match stage width {stage.width}"
        )
    if inputs is None:
        inputs = trace.encode_inputs(stage.alu)
    timings = stage.timings(chip, inputs, chunk=chunk)

    owm = owm_flag(trace.a_values, trace.b_values, trace.width)
    size_a = operand_size_class(trace.a_values, trace.width)
    size_b = operand_size_class(trace.b_values, trace.width)

    return _assemble_trace(stage, trace, timings, owm, size_a, size_b)


def build_error_traces_batch(
    stage: ExStage,
    chips: "list[ChipSample] | tuple[ChipSample, ...]",
    trace: InstructionTrace,
    chunk: int = 2048,
    inputs: np.ndarray | None = None,
) -> list[ErrorTrace]:
    """Run DTA of ``trace`` on a whole chip population in one kernel call.

    One :func:`~repro.timing.dta.batch_cycle_timings` call times every
    chip; trace encoding, logic evaluation, and OWM/operand-size
    classification are computed once and shared.  Entry ``i`` is
    bit-identical to ``build_error_trace(stage, chips[i], trace, chunk)``
    (the batch kernel's per-chip rows are bit-identical to the scalar
    path, and everything else here is delay-independent).
    """
    if not chips:
        raise ValueError("need at least one chip")
    if trace.width != stage.width:
        raise ValueError(
            f"trace width {trace.width} does not match stage width {stage.width}"
        )
    if inputs is None:
        inputs = trace.encode_inputs(stage.alu)
    batch = stage.batch_timings(delay_matrix(chips), inputs, chunk=chunk)

    owm = owm_flag(trace.a_values, trace.b_values, trace.width)
    size_a = operand_size_class(trace.a_values, trace.width)
    size_b = operand_size_class(trace.b_values, trace.width)

    return [
        _assemble_trace(stage, trace, batch.chip(i), owm, size_a, size_b)
        for i in range(len(chips))
    ]
