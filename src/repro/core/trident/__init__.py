"""Trident: comprehensive choke-error mitigation (Chapter 4 / TVLSI'18).

Four hardware components regulate Trident's three mechanisms:

* :mod:`repro.core.trident.tdc` -- Transition Detector & Counter: flags
  illegal transitions during the detection clock's transparent phase and
  classifies errors (SE(Min), SE(Max), CE) by their count,
* :mod:`repro.core.trident.cet` -- Choke Error Table: EID storage with
  pseudo-LRU replacement and Bloom-filtered lookup,
* :mod:`repro.core.trident.ccr` -- Choke Clearance Register: the
  DE-to-WB instruction buffer providing EID details and replay addresses,
* :mod:`repro.core.trident.controller` -- Choke Detection Controller:
  detection, correction (flush + replay), and avoidance (1 stall per SE,
  2 per CE).
"""

from repro.core.trident.tdc import TransitionDetectorCounter
from repro.core.trident.cet import ChokeErrorTable
from repro.core.trident.ccr import ChokeClearanceRegister, InstructionRecord
from repro.core.trident.controller import TridentScheme

__all__ = [
    "ChokeClearanceRegister",
    "ChokeErrorTable",
    "InstructionRecord",
    "TransitionDetectorCounter",
    "TridentScheme",
]
