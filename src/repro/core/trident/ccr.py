"""Choke Clearance Register (CCR): the DE-to-WB instruction buffer.

The CCR holds the opcode, operand size classes and PC of every
instruction currently between the decode and writeback stages (§4.3.5).
It serves three masters:

* the *detection* mechanism reads the errant and previous-cycle
  instruction details to form the EID,
* the *avoidance* mechanism compares the newest instruction's details
  against the CET,
* the *correction* mechanism supplies the errant instruction's address
  for the PC to replay.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class InstructionRecord:
    """One in-flight instruction's details as the CCR stores them."""

    pc: int
    opcode: int
    size_a: bool
    size_b: bool


class ChokeClearanceRegister:
    """A shift-register of in-flight instruction records."""

    def __init__(self, depth: int) -> None:
        if depth < 2:
            raise ValueError("CCR depth must cover at least DE and EX")
        self.depth = depth
        self._entries: deque[InstructionRecord] = deque(maxlen=depth)

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, record: InstructionRecord) -> None:
        """Advance the pipeline by one instruction (newest at decode)."""
        self._entries.appendleft(record)

    def newest(self) -> InstructionRecord:
        """The instruction just decoded (avoidance-lookup source)."""
        if not self._entries:
            raise LookupError("CCR is empty")
        return self._entries[0]

    def at_stage(self, stage_offset: int) -> InstructionRecord:
        """The instruction ``stage_offset`` stages past decode."""
        if not 0 <= stage_offset < len(self._entries):
            raise LookupError(
                f"no instruction at stage offset {stage_offset} "
                f"(occupancy {len(self._entries)})"
            )
        return self._entries[stage_offset]

    def errant_pair(self, ex_offset: int) -> tuple[InstructionRecord, InstructionRecord]:
        """(initialising, sensitising) records for an EX-stage error."""
        sensitising = self.at_stage(ex_offset)
        initialising = self.at_stage(ex_offset + 1)
        return initialising, sensitising

    def replay_address(self, ex_offset: int) -> int:
        """PC of the errant instruction, for the correction mechanism."""
        return self.at_stage(ex_offset).pc

    def flush(self) -> None:
        """Drop all in-flight state (pipeline flush)."""
        self._entries.clear()
