"""Transition Detector and Counter (TDC).

Each monitored pipestage owns a TDC: a double-edge-triggered flip-flop
driven by a *detection clock* whose transparent phase spans the whole
cycle except a small blanking interval around the system clock's rising
edge (§4.3.5).  Output-data transitions inside the transparent phase are
illegal; the TDC counts them per cycle and the count classifies the
error (Fig. 4.6):

* one illegal transition arriving *before* the minimum path delay
  constraint -> SE caused by a minimum timing violation,
* one illegal transition arriving *after* the clock period -> SE caused
  by a maximum timing violation,
* two illegal transitions -> CE (a maximum violation immediately
  followed by a minimum violation; the opposite order spans two
  detection cycles and is classified as two SEs).

This module expresses those semantics over the per-cycle arrival times
the timing layer produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.timing.dta import ERR_CE, ERR_NONE, ERR_SE_MAX, ERR_SE_MIN


@dataclass(frozen=True)
class TransitionDetectorCounter:
    """A TDC configured for one pipestage's clocking."""

    clock_period: float  # ps
    hold_constraint: float  # ps (minimum path delay constraint)

    def __post_init__(self) -> None:
        if self.clock_period <= 0:
            raise ValueError("clock_period must be positive")
        if not 0 <= self.hold_constraint < self.clock_period:
            raise ValueError("hold_constraint must lie within the clock period")

    def count_illegal(self, t_late: np.ndarray, t_early: np.ndarray) -> np.ndarray:
        """Illegal-transition count per cycle (0, 1, or 2).

        A late transition beyond the clock period spills into the next
        transparent phase; an early transition before the minimum path
        delay constraint lands inside the current one.  Both are illegal.
        """
        t_late = np.asarray(t_late, dtype=np.float64)
        t_early = np.asarray(t_early, dtype=np.float64)
        late_illegal = t_late > self.clock_period
        early_illegal = t_early < self.hold_constraint
        return late_illegal.astype(np.int8) + early_illegal.astype(np.int8)

    def classify(self, t_late: np.ndarray, t_early: np.ndarray) -> np.ndarray:
        """Error class per cycle from the illegal-transition pattern."""
        t_late = np.asarray(t_late, dtype=np.float64)
        t_early = np.asarray(t_early, dtype=np.float64)
        late_illegal = t_late > self.clock_period
        early_illegal = t_early < self.hold_constraint
        classes = np.full(t_late.shape, ERR_NONE, dtype=np.int8)
        classes[early_illegal] = ERR_SE_MIN
        classes[late_illegal] = ERR_SE_MAX
        classes[late_illegal & early_illegal] = ERR_CE
        return classes

    @staticmethod
    def stall_cycles_for(err_class: int) -> int:
        """Stall count the avoidance mechanism needs for an error class.

        One stall avoids an SE; a CE's chain of two data corruptions
        needs two (§4.3.7).
        """
        if err_class == ERR_NONE:
            return 0
        if err_class in (ERR_SE_MIN, ERR_SE_MAX):
            return 1
        if err_class == ERR_CE:
            return 2
        raise ValueError(f"unknown error class {err_class}")
