"""The Choke Detection Controller (CDC) and the full Trident scheme.

Trident's cycle-by-cycle flow (§4.3.2):

1. **Avoidance** -- the newest CCR instruction's context is compared
   against the CET.  On a match the CDC inserts the stall count the
   stored error class dictates (1 for an SE, 2 for a CE), halting the
   subsequent instructions while the scrutinised pipestage finishes
   clean.
2. **Detection** -- on a CET miss, the TDC's illegal-transition count
   classifies any error that occurs.
3. **Correction** -- the CDC flushes the pipeline (P penalty cycles) and
   the CCR supplies the replay address; the EID is recorded for future
   avoidance.

A predicted SE that actually manifests as a CE is under-stalled: the
single stall covers the maximum violation but not the trailing minimum
violation, so detection/correction still fires and the stored class is
escalated.
"""

from __future__ import annotations

from repro.arch.pipeline import DEFAULT_PIPELINE, PipelineConfig
from repro.core.scheme_sim import ErrorTrace
from repro.core.schemes.base import Scheme, SchemeResult, record_result
from repro.core.tags import EX_STAGE, ErrorId
from repro.core.trident.cet import ChokeErrorTable
from repro.core.trident.tdc import TransitionDetectorCounter
from repro.obs import audit
from repro.timing.dta import ERR_CE, ERR_NONE


class TridentScheme(Scheme):
    """Comprehensive choke-error mitigation (min + max + consecutive)."""

    name = "Trident"

    def __init__(
        self,
        cet_capacity: int = 128,
        pipeline: PipelineConfig = DEFAULT_PIPELINE,
    ) -> None:
        self.cet_capacity = cet_capacity
        self.pipeline = pipeline

    def simulate(self, trace: ErrorTrace) -> SchemeResult:
        cet = ChokeErrorTable(self.cet_capacity)
        seen: set[tuple] = set()

        stalls = 0
        flushes = 0
        predicted = 0
        false_positives = 0
        under_stalled = 0
        first_occurrences = 0
        capacity_misses = 0

        instr_sens = trace.instr_sens
        instr_init = trace.instr_init
        size_a = trace.size_a
        size_b = trace.size_b
        err_class = trace.err_class

        stall_penalty = self.pipeline.stall_penalty
        flush_penalty = self.pipeline.flush_penalty
        sink = audit.get()
        rec = sink.begin_scheme_run(self.name, trace) if sink is not None else None

        for j in range(len(trace)):
            key = (
                int(instr_init[j]),
                int(instr_sens[j]),
                bool(size_a[j]),
                bool(size_b[j]),
                EX_STAGE,
            )
            actual = int(err_class[j])
            stored = cet.lookup(key)
            if stored is not None:
                needed = TransitionDetectorCounter.stall_cycles_for(actual)
                granted = TransitionDetectorCounter.stall_cycles_for(stored)
                stalls += granted
                if actual == ERR_NONE:
                    false_positives += 1
                    if rec is not None:
                        rec.decision(j, actual, audit.DEC_FALSE_POSITIVE,
                                     stall=granted, penalty=granted * stall_penalty)
                elif granted >= needed:
                    predicted += 1
                    if rec is not None:
                        rec.decision(j, actual, audit.DEC_PREDICT_HIT,
                                     stall=granted, penalty=granted * stall_penalty)
                else:
                    # Predicted an SE, got a CE: the stall was insufficient,
                    # the trailing violation is detected and corrected, and
                    # the stored class escalates.
                    under_stalled += 1
                    flushes += 1
                    cet.insert(
                        ErrorId(key[0], key[1], key[2], key[3], actual)
                    )
                    if rec is not None:
                        rec.decision(
                            j, actual, audit.DEC_UNDER_STALL, stall=granted,
                            penalty=granted * stall_penalty + flush_penalty,
                        )
            elif actual != ERR_NONE:
                flushes += 1
                novel = key not in seen
                if not novel:
                    capacity_misses += 1
                else:
                    first_occurrences += 1
                    seen.add(key)
                cet.insert(ErrorId(key[0], key[1], key[2], key[3], actual))
                if rec is not None:
                    rec.decision(j, actual, audit.DEC_DETECT,
                                 penalty=flush_penalty, novel=novel)

        if rec is not None:
            rec.finish(effective_clock_period=trace.clock_period)
        penalty = stalls * self.pipeline.stall_penalty
        penalty += flushes * self.pipeline.flush_penalty
        errors_total = predicted + flushes
        return record_result(SchemeResult(
            scheme=self.name,
            benchmark=trace.benchmark,
            base_cycles=len(trace),
            penalty_cycles=penalty,
            effective_clock_period=trace.clock_period,
            errors_total=errors_total,
            errors_predicted=predicted,
            errors_missed=flushes,
            false_positives=false_positives,
            stalls=stalls,
            flushes=flushes,
            unique_instances=len(seen),
            extra={
                "first_occurrences": first_occurrences,
                "capacity_misses": capacity_misses,
                "under_stalled": under_stalled,
                "ce_count": int((err_class == ERR_CE).sum()),
            },
        ))
