"""Choke Error Table (CET): Trident's EID store.

A RAM-organised table of Error IDs with Bloom-filtered parallel lookup
and pseudo-LRU replacement (§4.3.5).  The lookup key is the instruction
context (initialising opcode, sensitising opcode, operand size classes,
pipestage); the payload is the error class, which tells the CDC how many
stall cycles the avoidance mechanism must insert.
"""

from __future__ import annotations

from repro.core.bloom import BloomFilter
from repro.core.plru import PseudoLRUTree
from repro.core.tags import ErrorId


class ChokeErrorTable:
    """Capacity-bounded EID table with pseudo-LRU replacement."""

    def __init__(self, capacity: int = 128, bloom_bits: int | None = None) -> None:
        if capacity < 1 or capacity & (capacity - 1):
            raise ValueError(f"capacity must be a power of two, got {capacity}")
        self.capacity = capacity
        self._slots: list[tuple | None] = [None] * capacity
        self._index: dict[tuple, int] = {}  # key -> slot
        self._classes: dict[tuple, int] = {}  # key -> stored error class
        self._plru = PseudoLRUTree(capacity)
        self._bloom = BloomFilter(bloom_bits or max(64, capacity * 16))
        self.unique_insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._index)

    def lookup(self, key: tuple) -> int | None:
        """Probe for an EID; returns its stored error class, or ``None``.

        A hit marks the entry recently used (it is about to save a
        recovery, the most valuable kind of entry).
        """
        if key not in self._bloom:
            return None
        slot = self._index.get(key)
        if slot is None:
            return None  # Bloom false positive
        self._plru.touch(slot)
        return self._classes[key]

    def insert(self, eid: ErrorId) -> None:
        """Record a detected error; updates the class of an existing key.

        If a context re-errs with a different (e.g. escalated) class, the
        stored class is replaced so future stalls match the new severity.
        """
        key = eid.key
        if key in self._index:
            self._classes[key] = eid.err_class
            self._plru.touch(self._index[key])
            return
        self.unique_insertions += 1
        if len(self._index) < self.capacity:
            slot = next(i for i, entry in enumerate(self._slots) if entry is None)
        else:
            slot = self._plru.victim()
            victim = self._slots[slot]
            if victim is not None:
                del self._index[victim]
                del self._classes[victim]
                self.evictions += 1
        self._slots[slot] = key
        self._index[key] = slot
        self._classes[key] = eid.err_class
        self._plru.touch(slot)
        self._bloom.rebuild(self._index)

    def keys(self) -> list[tuple]:
        return list(self._index)
