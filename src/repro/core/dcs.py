"""Dynamic Choke Sensing (DCS): the DATE 2017 technique.

DCS operates in three interlinked stages (§3.3.4):

1. **Choke sensing** -- the learning phase.  Each unique timing-error
   instance is allowed to occur once; its four-part tag (errant
   opcode+OWM, previous opcode+OWM) is recorded in the CSLT.
2. **Choke error recovery** -- on a sensed (unpredicted) error the Choke
   Controller flushes the pipeline and replays the instruction, costing
   P cycles (P = pipeline depth).
3. **Timing error avoidance** -- the adaptive phase.  Every decode-stage
   opcode is looked up in the CSLT; on a hit, a single stall cycle is
   inserted before the execute stage, giving the instruction the two
   cycles the worst-case choke path needs.

Error handling (§3.3.5): a false-positive table match costs one wasted
stall; a false negative pays the full flush-and-replay penalty.

DCS addresses *maximum* timing violations only -- minimum violations are
assumed handled by buffer insertion (the assumption Trident later
removes).
"""

from __future__ import annotations

from repro.arch.pipeline import DEFAULT_PIPELINE, PipelineConfig
from repro.core.cslt import AssociativeCSLT, IndependentCSLT
from repro.core.scheme_sim import ErrorTrace
from repro.core.schemes.base import Scheme, SchemeResult, record_result
from repro.core.tags import DcsTag
from repro.obs import audit


class DcsScheme(Scheme):
    """DCS with either CSLT organisation.

    ``variant="icslt"`` uses a fully-associative table of ``capacity``
    independent tuples; ``variant="acslt"`` uses ``capacity`` set tuples
    of ``associativity`` previous-pair ways each.
    """

    def __init__(
        self,
        variant: str = "icslt",
        capacity: int = 128,
        associativity: int = 16,
        pipeline: PipelineConfig = DEFAULT_PIPELINE,
        use_owm: bool = True,
        use_prev: bool = True,
    ) -> None:
        if variant not in ("icslt", "acslt"):
            raise ValueError(f"unknown DCS variant {variant!r}")
        self.variant = variant
        self.capacity = capacity
        self.associativity = associativity
        self.pipeline = pipeline
        #: ablation knobs for the tag granularity study: ``use_owm=False``
        #: drops the operand-width bits, ``use_prev=False`` drops the
        #: initialising-instruction half (an opcode-only tag, the
        #: granularity of earlier PC/opcode predictors the paper improves
        #: on).
        self.use_owm = use_owm
        self.use_prev = use_prev
        self.name = "DCS-ICSLT" if variant == "icslt" else "DCS-ACSLT"
        if not use_owm or not use_prev:
            suffix = []
            if not use_owm:
                suffix.append("noOWM")
            if not use_prev:
                suffix.append("noPrev")
            self.name += "[" + ",".join(suffix) + "]"

    def _new_table(self):
        if self.variant == "icslt":
            return IndependentCSLT(self.capacity)
        return AssociativeCSLT(self.capacity, self.associativity)

    def simulate(self, trace: ErrorTrace) -> SchemeResult:
        table = self._new_table()
        seen_tags: set[DcsTag] = set()

        stalls = 0
        flushes = 0
        predicted = 0
        false_positives = 0
        first_occurrences = 0
        capacity_misses = 0

        instr_sens = trace.instr_sens
        instr_init = trace.instr_init
        owm_sens = trace.owm_sens
        owm_init = trace.owm_init
        max_err = trace.max_err

        err_class = trace.err_class
        stall_penalty = self.pipeline.stall_penalty
        flush_penalty = self.pipeline.flush_penalty
        sink = audit.get()
        rec = sink.begin_scheme_run(self.name, trace) if sink is not None else None

        use_owm = self.use_owm
        use_prev = self.use_prev
        for j in range(len(trace)):
            tag = DcsTag(
                int(instr_sens[j]),
                bool(owm_sens[j]) if use_owm else False,
                int(instr_init[j]) if use_prev else 0,
                bool(owm_init[j]) if (use_owm and use_prev) else False,
            )
            actual = bool(max_err[j])
            if table.lookup(tag):
                # Avoidance: one stall gives the execute stage an extra
                # cycle, which covers even the worst-case choke path.
                stalls += 1
                if actual:
                    predicted += 1
                else:
                    false_positives += 1
                if rec is not None:
                    rec.decision(
                        j, int(err_class[j]),
                        audit.DEC_PREDICT_HIT if actual else audit.DEC_FALSE_POSITIVE,
                        stall=1, penalty=stall_penalty,
                    )
            elif actual:
                # Sensing + recovery: flush the pipeline, replay, record.
                flushes += 1
                novel = tag not in seen_tags
                if not novel:
                    capacity_misses += 1  # known tag lost to eviction
                else:
                    first_occurrences += 1
                    seen_tags.add(tag)
                table.insert(tag)
                if rec is not None:
                    rec.decision(j, int(err_class[j]), audit.DEC_DETECT,
                                 penalty=flush_penalty, novel=novel)

        if rec is not None:
            rec.finish(effective_clock_period=trace.clock_period)
        penalty = stalls * self.pipeline.stall_penalty
        penalty += flushes * self.pipeline.flush_penalty
        return record_result(SchemeResult(
            scheme=self.name,
            benchmark=trace.benchmark,
            base_cycles=len(trace),
            penalty_cycles=penalty,
            effective_clock_period=trace.clock_period,
            errors_total=predicted + flushes,
            errors_predicted=predicted,
            errors_missed=flushes,
            false_positives=false_positives,
            stalls=stalls,
            flushes=flushes,
            unique_instances=len(seen_tags),
            extra={
                "first_occurrences": first_occurrences,
                "capacity_misses": capacity_misses,
                "table_unique_insertions": table.unique_insertions,
            },
        ))
