"""Bloom filter: the parallel lookup accelerator of the CSLT and CET.

The paper performs table lookups through a Bloom filter (§3.3.4, §4.3.5)
so the decode-stage probe does not sit on the critical path.  Because the
tables evict entries (pseudo-LRU) while a Bloom filter cannot delete,
the filter is rebuilt from the surviving tags whenever an eviction
occurs -- a standard software-model idealisation of the hardware's
periodic refresh.
"""

from __future__ import annotations

import zlib
from typing import Hashable, Iterable

#: (item, num_bits, num_hashes) -> bit positions.  The schemes probe a
#: small recurring key population (static-instruction ids, opcode
#: pairs) hundreds of thousands of times per simulation, and the
#: repr+CRC32 derivation dominated their profile; the memo makes the
#: probe a dict hit.  Positions are a pure function of the key, so the
#: cache can never change behaviour, and the size cap only bounds
#: memory -- overflow means later keys are derived on the fly.
_POSITION_CACHE: dict[tuple, tuple[int, ...]] = {}
_POSITION_CACHE_MAX = 1 << 16


class BloomFilter:
    """A classic Bloom filter over hashable items.

    Bit positions derive from CRC32 over the item's ``repr``, not
    builtin ``hash()``: the builtin is salted per process
    (PYTHONHASHSEED), so filter-dependent collision behaviour — and
    with it any downstream tie-break — would differ between a serial
    run and its fleet workers.  The QA lint
    (``benchmarks/check_regression.py --lint``) bans builtin ``hash()``
    under ``src/`` for exactly this reason.
    """

    def __init__(self, num_bits: int = 1024, num_hashes: int = 3) -> None:
        if num_bits < 1:
            raise ValueError("num_bits must be positive")
        if num_hashes < 1:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)
        self._count = 0

    def _positions(self, item: Hashable) -> tuple[int, ...]:
        key = (item, self.num_bits, self.num_hashes)
        positions = _POSITION_CACHE.get(key)
        if positions is None:
            raw = repr(item).encode("utf-8")
            positions = tuple(
                zlib.crc32(raw, salt) % self.num_bits
                for salt in range(self.num_hashes)
            )
            if len(_POSITION_CACHE) < _POSITION_CACHE_MAX:
                _POSITION_CACHE[key] = positions
        return positions

    def add(self, item: Hashable) -> None:
        bits = self._bits
        for pos in self._positions(item):
            bits[pos >> 3] |= 1 << (pos & 7)
        self._count += 1

    def __contains__(self, item: Hashable) -> bool:
        # hottest probe in the scheme simulations -- a plain loop beats
        # all()-over-genexpr by avoiding the generator frame per call
        bits = self._bits
        for pos in self._positions(item):
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def clear(self) -> None:
        self._bits = bytearray(len(self._bits))
        self._count = 0

    def rebuild(self, items: Iterable[Hashable]) -> None:
        """Repopulate from scratch (used after table evictions)."""
        self.clear()
        for item in items:
            self.add(item)

    @property
    def fill_ratio(self) -> float:
        """Fraction of filter bits set (false-positive-rate proxy)."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.num_bits
