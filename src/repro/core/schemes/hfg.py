"""HFG: Hierarchically Focused Guardbanding (Rahimi et al., DATE'13).

HFG proactively prevents timing errors by adaptively widening the timing
guardband from in-situ PVTA sensor data.  No recovery penalties are ever
paid, but the widened guardband stretches every cycle: even a handful of
potential error cycles inflates the whole execution (§3.5.4's explanation
of HFG's poor performance).

Behavioural model: the guardbanded period is the worst observed
sensitised path delay, plus a sensor margin, further widened by the
dynamic-PVT factor the guardband must carry to stay error-free across
supply droop and temperature.  That droop factor is computed from the
same trans-regional delay model the rest of the stack uses -- and it is
exactly the paper's point about HFG at NTC: near threshold, a modest
voltage droop inflates delay (and therefore the guardband) dramatically,
while at STC the same droop costs little.
"""

from __future__ import annotations

import numpy as np

from repro.arch.pipeline import DEFAULT_PIPELINE, PipelineConfig
from repro.core.scheme_sim import ErrorTrace
from repro.core.schemes.base import Scheme, SchemeResult, record_result
from repro.obs import audit
from repro.pv.delaymodel import VTH_NOMINAL, delay_factor


def pvta_guardband_factor(
    vdd: float, droop: float = 0.08, aging_delta_vth: float = 0.04
) -> float:
    """Delay inflation the guardband must absorb for dynamic V/T/A.

    ``droop`` is the worst-case supply dip the band covers;
    ``aging_delta_vth`` the end-of-life NBTI/PBTI threshold shift (HFG
    explicitly guards against aging).  Near threshold both effects are
    hugely amplified by the same mechanism that amplifies process
    variation, so the factor is large at NTC and mild at STC.
    """
    if not 0 <= droop < 1:
        raise ValueError("droop must be in [0, 1)")
    if aging_delta_vth < 0:
        raise ValueError("aging_delta_vth must be non-negative")
    nominal = delay_factor(vdd, VTH_NOMINAL)
    guarded = delay_factor(vdd * (1.0 - droop), VTH_NOMINAL + aging_delta_vth)
    return float(guarded / nominal)


class HfgScheme(Scheme):
    """Adaptive guardbanding: zero penalties, stretched clock."""

    name = "HFG"

    def __init__(
        self,
        pipeline: PipelineConfig = DEFAULT_PIPELINE,
        sensor_margin: float = 0.05,
        supply_droop: float = 0.08,
        aging_delta_vth: float = 0.04,
    ) -> None:
        if sensor_margin < 0:
            raise ValueError("sensor_margin must be non-negative")
        self.pipeline = pipeline
        self.sensor_margin = sensor_margin
        self.supply_droop = supply_droop
        self.aging_delta_vth = aging_delta_vth

    def simulate(self, trace: ErrorTrace) -> SchemeResult:
        worst = float(np.max(trace.t_late)) if len(trace) else 0.0
        pvta = pvta_guardband_factor(
            trace.corner_vdd, self.supply_droop, self.aging_delta_vth
        )
        period = max(
            trace.clock_period, worst * (1.0 + self.sensor_margin) * pvta
        )
        avoided = int(trace.max_err.sum())
        sink = audit.get()
        if sink is not None:
            rec = sink.begin_scheme_run(self.name, trace)
            err_class = trace.err_class
            for j in np.flatnonzero(trace.max_err):
                rec.decision(int(j), int(err_class[j]), audit.DEC_AVOID)
            rec.finish(effective_clock_period=period)
        return record_result(SchemeResult(
            scheme=self.name,
            benchmark=trace.benchmark,
            base_cycles=len(trace),
            penalty_cycles=0,
            effective_clock_period=period,
            errors_total=avoided,
            errors_predicted=avoided,  # all errors pre-empted by guardband
            errors_missed=0,
            extra={"guardband_ratio": period / trace.clock_period},
        ))
