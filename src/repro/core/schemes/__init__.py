"""Comparison schemes: Razor, HFG, and OCST behavioural models."""

from repro.core.schemes.base import Scheme, SchemeResult
from repro.core.schemes.razor import RazorScheme
from repro.core.schemes.hfg import HfgScheme
from repro.core.schemes.ocst import OcstScheme

__all__ = ["HfgScheme", "OcstScheme", "RazorScheme", "Scheme", "SchemeResult"]
