"""OCST: Online Clock Skew Tuning (Ye, Yuan & Xu, ICCAD'11).

OCST observes timing errors per circuit block over a tuning interval
(100 000 cycles in the paper) with Razor-style detection and recovery;
when a block's error frequency crosses a threshold, its clock skew is
tuned to grant the block extra time, avoiding future errors at the cost
of a slightly longer effective period.  Like Razor it relies on inserted
buffers against minimum timing violations, so it only reacts to maximum
violations.
"""

from __future__ import annotations

from repro.arch.pipeline import DEFAULT_PIPELINE, PipelineConfig
from repro.core.scheme_sim import ErrorTrace
from repro.core.schemes.base import Scheme, SchemeResult, record_result
from repro.obs import audit


class OcstScheme(Scheme):
    """Interval-based clock-skew tuning around a Razor-style EDAC core."""

    name = "OCST"

    def __init__(
        self,
        pipeline: PipelineConfig = DEFAULT_PIPELINE,
        interval: int = 5_000,
        skew_step_fraction: float = 0.03,
        max_skew_fraction: float = 0.12,
        error_rate_threshold: float = 1e-4,
    ) -> None:
        if interval < 1:
            raise ValueError("interval must be positive")
        if skew_step_fraction <= 0 or max_skew_fraction <= 0:
            raise ValueError("skew fractions must be positive")
        self.pipeline = pipeline
        self.interval = interval
        self.skew_step_fraction = skew_step_fraction
        self.max_skew_fraction = max_skew_fraction
        self.error_rate_threshold = error_rate_threshold

    def simulate(self, trace: ErrorTrace) -> SchemeResult:
        period = trace.clock_period
        skew_step = self.skew_step_fraction * period
        max_skew = self.max_skew_fraction * period
        skew = 0.0

        flushes = 0
        avoided = 0
        elapsed_ps = 0.0
        interval_errors = 0
        interval_cycles = 0
        climb_baseline_rate: float | None = None
        frozen_intervals = 0
        t_late = trace.t_late
        max_err = trace.max_err
        err_class = trace.err_class

        sink = audit.get()
        rec = sink.begin_scheme_run(self.name, trace) if sink is not None else None

        for j in range(len(trace)):
            effective = period + skew
            elapsed_ps += effective
            interval_cycles += 1
            if max_err[j]:
                if t_late[j] > effective:
                    # Error still trips the speculation window: Razor-style
                    # flush + replay.
                    flushes += 1
                    interval_errors += 1
                    elapsed_ps += self.pipeline.flush_penalty * effective
                    if rec is not None:
                        rec.decision(j, int(err_class[j]), audit.DEC_DETECT,
                                     penalty=self.pipeline.flush_penalty)
                else:
                    # The tuned skew granted enough extra time.
                    avoided += 1
                    if rec is not None:
                        rec.decision(j, int(err_class[j]), audit.DEC_AVOID)
            if interval_cycles >= self.interval:
                rate = interval_errors / interval_cycles
                if frozen_intervals > 0:
                    frozen_intervals -= 1
                elif rate > self.error_rate_threshold and skew < max_skew:
                    # Climb one step per interval towards the skew bound.
                    if climb_baseline_rate is None:
                        climb_baseline_rate = rate
                    skew = min(skew + skew_step, max_skew)
                elif skew >= max_skew and climb_baseline_rate is not None:
                    # The climb is exhausted: keep the skew only if it is
                    # actually buying error reduction.  Choke-path errors
                    # sit far beyond any tunable skew range, and paying
                    # the stretched period for nothing is strictly worse.
                    if rate > 0.95 * climb_baseline_rate:
                        skew = 0.0
                        frozen_intervals = 8
                    climb_baseline_rate = None
                elif interval_errors == 0 and skew > 0.0:
                    # Tune back towards nominal when the block runs clean.
                    skew = max(skew - skew_step, 0.0)
                    climb_baseline_rate = None
                interval_errors = 0
                interval_cycles = 0

        base = len(trace)
        total_errors = flushes + avoided
        average_period = elapsed_ps / max(
            base + flushes * self.pipeline.flush_penalty, 1
        )
        if rec is not None:
            rec.finish(effective_clock_period=average_period)
        return record_result(SchemeResult(
            scheme=self.name,
            benchmark=trace.benchmark,
            base_cycles=base,
            penalty_cycles=flushes * self.pipeline.flush_penalty,
            effective_clock_period=average_period,
            errors_total=total_errors,
            errors_predicted=avoided,
            errors_missed=flushes,
            flushes=flushes,
            extra={"final_skew_ps": skew},
        ))
