"""Razor: the reactive double-sampling baseline (Ernst et al., MICRO'03).

Razor detects a maximum timing violation with a shadow latch at each
pipestage boundary and recovers with a pipeline flush plus instruction
replay -- every occurrence pays the full recovery penalty because Razor
has no prediction mechanism.  Minimum timing violations are assumed
handled by buffer insertion, so Razor is blind to them (the blindness
Chapter 4 exposes: choke buffers defeat the insertion at NTC).
"""

from __future__ import annotations

import numpy as np

from repro.arch.pipeline import DEFAULT_PIPELINE, PipelineConfig
from repro.core.scheme_sim import ErrorTrace
from repro.core.schemes.base import Scheme, SchemeResult, record_result
from repro.obs import audit


class RazorScheme(Scheme):
    """Detect-and-recover on every maximum timing violation."""

    name = "Razor"

    def __init__(self, pipeline: PipelineConfig = DEFAULT_PIPELINE) -> None:
        self.pipeline = pipeline

    def simulate(self, trace: ErrorTrace) -> SchemeResult:
        errors = int(trace.max_err.sum())
        penalty = errors * self.pipeline.flush_penalty
        sink = audit.get()
        if sink is not None:
            rec = sink.begin_scheme_run(self.name, trace)
            err_class = trace.err_class
            flush_penalty = self.pipeline.flush_penalty
            for j in np.flatnonzero(trace.max_err):
                rec.decision(int(j), int(err_class[j]), audit.DEC_DETECT,
                             penalty=flush_penalty)
            rec.finish(effective_clock_period=trace.clock_period)
        return record_result(SchemeResult(
            scheme=self.name,
            benchmark=trace.benchmark,
            base_cycles=len(trace),
            penalty_cycles=penalty,
            effective_clock_period=trace.clock_period,
            errors_total=errors,
            errors_predicted=0,
            errors_missed=errors,
            flushes=errors,
        ))
