"""Common scheme interface and the result record every scheme returns."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro import obs
from repro.core.scheme_sim import ErrorTrace


@dataclass
class SchemeResult:
    """Outcome of replaying one error trace through one EDAC scheme.

    * ``base_cycles``: useful-work cycles of the trace.
    * ``penalty_cycles``: stall + recovery cycles added by the scheme.
    * ``effective_clock_period``: the per-cycle period the scheme runs at
      (Razor/DCS/Trident keep the nominal period; HFG stretches it; for
      OCST this is the time-averaged tuned period).
    * ``errors_total``: error occurrences the scheme is responsible for
      (max-only for Razor/HFG/OCST/DCS; all classes for Trident).
    * ``errors_predicted`` / ``errors_missed``: of those, how many the
      scheme's table foresaw (avoided with stalls) vs detected late
      (flush + replay).
    * ``false_positives``: predicted-but-clean cycles (wasted stalls).
    * ``unique_instances``: distinct tags/EIDs the scheme learned.
    """

    scheme: str
    benchmark: str
    base_cycles: int
    penalty_cycles: int
    effective_clock_period: float
    errors_total: int = 0
    errors_predicted: int = 0
    errors_missed: int = 0
    false_positives: int = 0
    stalls: int = 0
    flushes: int = 0
    unique_instances: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return self.base_cycles + self.penalty_cycles

    @property
    def execution_time_ps(self) -> float:
        return self.total_cycles * self.effective_clock_period

    @property
    def prediction_accuracy(self) -> float:
        """Fraction of actual error occurrences the scheme predicted."""
        if self.errors_total == 0:
            return 1.0
        return self.errors_predicted / self.errors_total


def record_result(result: SchemeResult) -> SchemeResult:
    """Emit a scheme run's domain counters and pass the result through.

    Every scheme's ``simulate`` returns through here so the telemetry
    layer sees ``scheme.errors`` / ``scheme.rollbacks`` /
    ``scheme.replays`` (and friends) labelled by scheme name.  Free when
    telemetry is off: one ``enabled()`` check, no allocation.  The
    counters are schedule-dependent (serial runs memoise scheme sweeps
    across experiments; parallel workers re-simulate per task), so the
    ledger carries them in its ``domain`` section, outside the
    determinism-view drift gate.
    """
    if not obs.enabled():
        return result
    scheme = result.scheme
    obs.inc("scheme.runs", scheme=scheme)
    obs.inc("scheme.errors", result.errors_total, scheme=scheme)
    obs.inc("scheme.rollbacks", result.flushes, scheme=scheme)
    obs.inc("scheme.replays", result.errors_missed, scheme=scheme)
    obs.inc("scheme.stalls", result.stalls, scheme=scheme)
    obs.inc("scheme.predicted", result.errors_predicted, scheme=scheme)
    obs.inc("scheme.false_positives", result.false_positives, scheme=scheme)
    obs.inc("scheme.penalty_cycles", result.penalty_cycles, scheme=scheme)
    for key, value in result.extra.items():
        if isinstance(value, int) and not isinstance(value, bool):
            obs.inc(f"scheme.{key}", value, scheme=scheme)
    return result


class Scheme(abc.ABC):
    """A timing-error detection/correction/avoidance scheme."""

    #: Human-readable scheme name (used in reports and figures).
    name: str = "scheme"

    @abc.abstractmethod
    def simulate(self, trace: ErrorTrace) -> SchemeResult:
        """Replay ``trace`` and account penalties/energy events."""
