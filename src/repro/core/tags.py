"""Error tags: the DCS four-part tag and the Trident Error ID (EID).

DCS tags a timing-error instance at instruction-pair granularity
(§3.3.2): the errant (sensitising) opcode with its OWM bit plus the
previous-cycle (initialising) opcode with its OWM bit.  This is finer
than the PC-based tags of earlier predictive schemes and is what lets the
CSLT distinguish input conditions that do and do not sensitise a choke
path.

Trident's EID (§4.3.4) extends the idea: initialising and sensitising
vectors, the operand size classes, the error class (SE(Min) / SE(Max) /
CE) and the errant pipestage.
"""

from __future__ import annotations

from typing import NamedTuple

#: Bit widths used for hardware-overhead estimation.
OPCODE_BITS = 8
OWM_BITS = 1
SIZE_CLASS_BITS = 1
ERROR_CLASS_BITS = 2
PIPESTAGE_BITS = 4

#: Total DCS tag width: two (opcode, OWM) pairs.
DCS_TAG_BITS = 2 * (OPCODE_BITS + OWM_BITS)

#: Total Trident EID width.
EID_BITS = (
    2 * OPCODE_BITS + 2 * SIZE_CLASS_BITS + ERROR_CLASS_BITS + PIPESTAGE_BITS
)

#: Pipestage identifier of the execute stage (the stage under scrutiny).
EX_STAGE = 5


class DcsTag(NamedTuple):
    """One CSLT entry: (errant opcode, errant OWM, previous opcode,
    previous OWM)."""

    opcode_errant: int
    owm_errant: bool
    opcode_prev: int
    owm_prev: bool

    @property
    def set_key(self) -> tuple[int, bool]:
        """The ACSLT set key: the errant (opcode, OWM) pair."""
        return (self.opcode_errant, self.owm_errant)

    @property
    def way_key(self) -> tuple[int, bool]:
        """The ACSLT way key: the previous-cycle (opcode, OWM) pair."""
        return (self.opcode_prev, self.owm_prev)


class ErrorId(NamedTuple):
    """One Trident CET entry.

    The lookup key is everything except ``err_class`` (the class is the
    *payload*: it tells the CDC how many stall cycles the avoidance
    mechanism must insert).
    """

    opcode_init: int
    opcode_sens: int
    size_a: bool
    size_b: bool
    err_class: int
    pipestage: int = EX_STAGE

    @property
    def key(self) -> tuple[int, int, bool, bool, int]:
        """The CET lookup key (class excluded)."""
        return (
            self.opcode_init,
            self.opcode_sens,
            self.size_a,
            self.size_b,
            self.pipestage,
        )
