"""The Choke Sensor Lookup Table (CSLT): ICSLT and ACSLT variants.

The CSLT is DCS' record of unique timing-error instances (§3.3.3):

* **ICSLT** (Independent CSLT): every four-part tag occupies its own
  tuple; the structure behaves like a fully-associative cache with
  pseudo-LRU replacement.  Its drawback is redundancy: the same errant
  (opcode, OWM) pair can occupy many tuples.
* **ACSLT** (Associative CSLT): one tuple per errant (opcode, OWM) pair
  holding up to ``associativity`` previous-cycle (opcode, OWM) pairs --
  a set-associative organisation that eliminates the redundancy.

Both variants expose the same interface: ``lookup`` (the decode-stage
probe, through a Bloom filter in hardware) and ``insert`` (the
error-sensing path).
"""

from __future__ import annotations

from repro.core.bloom import BloomFilter
from repro.core.plru import PseudoLRUTree
from repro.core.tags import DcsTag


class IndependentCSLT:
    """Fully-associative CSLT: one independent tuple per tag."""

    def __init__(self, capacity: int, bloom_bits: int | None = None) -> None:
        if capacity < 1 or capacity & (capacity - 1):
            raise ValueError(f"capacity must be a power of two, got {capacity}")
        self.capacity = capacity
        self._slots: list[DcsTag | None] = [None] * capacity
        self._index: dict[DcsTag, int] = {}
        self._plru = PseudoLRUTree(capacity)
        self._bloom = BloomFilter(bloom_bits or max(64, capacity * 16))
        self.unique_insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, tag: DcsTag) -> bool:
        return tag in self._index

    def lookup(self, tag: DcsTag) -> bool:
        """Decode-stage probe; a hit marks the tuple recently used."""
        if tag not in self._bloom:
            return False
        slot = self._index.get(tag)
        if slot is None:
            return False  # Bloom false positive; the tag compare fails
        self._plru.touch(slot)
        return True

    def insert(self, tag: DcsTag) -> None:
        """Record a newly-sensed error instance."""
        if tag in self._index:
            self._plru.touch(self._index[tag])
            return
        self.unique_insertions += 1
        if len(self._index) < self.capacity:
            slot = next(i for i, entry in enumerate(self._slots) if entry is None)
        else:
            slot = self._plru.victim()
            victim_tag = self._slots[slot]
            if victim_tag is not None:
                del self._index[victim_tag]
                self.evictions += 1
        self._slots[slot] = tag
        self._index[tag] = slot
        self._plru.touch(slot)
        self._bloom.rebuild(self._index)

    def tags(self) -> list[DcsTag]:
        return [tag for tag in self._slots if tag is not None]


class _AcsltSet:
    """One ACSLT tuple: an errant pair plus its previous-pair ways."""

    __slots__ = ("ways", "plru", "_slots")

    def __init__(self, associativity: int) -> None:
        self.ways: dict[tuple[int, bool], int] = {}
        self.plru = PseudoLRUTree(associativity)
        self._slots: list[tuple[int, bool] | None] = [None] * associativity

    # way bookkeeping mirrors the top-level table's slot bookkeeping
    def lookup(self, way_key: tuple[int, bool]) -> bool:
        slot = self.ways.get(way_key)
        if slot is None:
            return False
        self.plru.touch(slot)
        return True

    def insert(self, way_key: tuple[int, bool], capacity: int) -> None:
        if way_key in self.ways:
            self.plru.touch(self.ways[way_key])
            return
        if len(self.ways) < capacity:
            slot = next(i for i, entry in enumerate(self._slots) if entry is None)
        else:
            slot = self.plru.victim()
            victim = self._slots[slot]
            if victim is not None:
                del self.ways[victim]
        self._slots[slot] = way_key
        self.ways[way_key] = slot
        self.plru.touch(slot)


class AssociativeCSLT:
    """Set-associative CSLT: tuples keyed by the errant (opcode, OWM)."""

    def __init__(self, num_entries: int, associativity: int) -> None:
        if num_entries < 1 or num_entries & (num_entries - 1):
            raise ValueError(f"num_entries must be a power of two, got {num_entries}")
        if associativity < 1 or associativity & (associativity - 1):
            raise ValueError(
                f"associativity must be a power of two, got {associativity}"
            )
        self.num_entries = num_entries
        self.associativity = associativity
        self._sets: dict[tuple[int, bool], _AcsltSet] = {}
        self._slots: list[tuple[int, bool] | None] = [None] * num_entries
        self._slot_of: dict[tuple[int, bool], int] = {}
        self._plru = PseudoLRUTree(num_entries)
        self.unique_insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return sum(len(entry.ways) for entry in self._sets.values())

    def lookup(self, tag: DcsTag) -> bool:
        entry = self._sets.get(tag.set_key)
        if entry is None:
            return False
        self._plru.touch(self._slot_of[tag.set_key])
        return entry.lookup(tag.way_key)

    def insert(self, tag: DcsTag) -> None:
        set_key = tag.set_key
        entry = self._sets.get(set_key)
        if entry is None:
            self.unique_insertions += 1
            if len(self._sets) < self.num_entries:
                slot = next(
                    i for i, existing in enumerate(self._slots) if existing is None
                )
            else:
                slot = self._plru.victim()
                victim = self._slots[slot]
                if victim is not None:
                    del self._sets[victim]
                    del self._slot_of[victim]
                    self.evictions += 1
            entry = _AcsltSet(self.associativity)
            self._sets[set_key] = entry
            self._slots[slot] = set_key
            self._slot_of[set_key] = slot
        self._plru.touch(self._slot_of[set_key])
        entry.insert(tag.way_key, self.associativity)
