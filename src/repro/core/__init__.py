"""The paper's contribution: choke-error-resilient EDAC techniques.

* :mod:`repro.core.tags` -- DCS four-part error tags and Trident EIDs,
* :mod:`repro.core.plru` / :mod:`repro.core.bloom` -- replacement policy
  and lookup-accelerator substrates,
* :mod:`repro.core.cslt` -- the Choke Sensor Lookup Table (ICSLT/ACSLT),
* :mod:`repro.core.dcs` -- Dynamic Choke Sensing (the DATE 2017 scheme),
* :mod:`repro.core.trident` -- the Trident extension (TDC/CET/CCR/CDC),
* :mod:`repro.core.schemes` -- Razor, HFG, and OCST comparison schemes,
* :mod:`repro.core.scheme_sim` -- the per-cycle timing-error simulator
  all schemes replay.
"""

from repro.core.tags import DcsTag, ErrorId, DCS_TAG_BITS, EID_BITS
from repro.core.bloom import BloomFilter
from repro.core.plru import PseudoLRUTree
from repro.core.cslt import AssociativeCSLT, IndependentCSLT
from repro.core.dcs import DcsScheme
from repro.core.scheme_sim import ErrorTrace, build_error_trace
from repro.core.schemes import HfgScheme, OcstScheme, RazorScheme, SchemeResult
from repro.core.trident import TridentScheme

__all__ = [
    "AssociativeCSLT",
    "BloomFilter",
    "DCS_TAG_BITS",
    "DcsScheme",
    "DcsTag",
    "EID_BITS",
    "ErrorId",
    "ErrorTrace",
    "HfgScheme",
    "IndependentCSLT",
    "OcstScheme",
    "PseudoLRUTree",
    "RazorScheme",
    "SchemeResult",
    "TridentScheme",
    "build_error_trace",
]
