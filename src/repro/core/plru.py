"""Tree pseudo-LRU replacement policy.

Both the CSLT and the CET use pseudo-LRU eviction (§3.3.4): it harvests
most of LRU's benefit without LRU's hardware cost.  This is the classic
binary-tree PLRU: one direction bit per internal node, flipped away from
the accessed leaf; the victim is found by following the bits.
"""

from __future__ import annotations

#: num_ways -> per-way root-to-leaf paths: way -> ((node, bit), ...).
#: The path a touch walks is a pure function of (num_ways, way), and
#: touch() is one of the hottest calls in the scheme simulations, so
#: the walk is precomputed once per tree shape.
_PATH_CACHE: dict[int, tuple[tuple[tuple[int, int], ...], ...]] = {}


def _touch_paths(num_ways: int) -> tuple[tuple[tuple[int, int], ...], ...]:
    paths = _PATH_CACHE.get(num_ways)
    if paths is None:
        built = []
        for way in range(num_ways):
            steps = []
            node = 0
            low, high = 0, num_ways
            while high - low > 1:
                mid = (low + high) // 2
                if way < mid:
                    steps.append((node, 1))  # LRU side is now the right subtree
                    node = 2 * node + 1
                    high = mid
                else:
                    steps.append((node, 0))
                    node = 2 * node + 2
                    low = mid
            built.append(tuple(steps))
        paths = _PATH_CACHE[num_ways] = tuple(built)
    return paths


class PseudoLRUTree:
    """Tree-PLRU over ``num_ways`` slots (``num_ways`` a power of two)."""

    def __init__(self, num_ways: int) -> None:
        if num_ways < 1 or num_ways & (num_ways - 1):
            raise ValueError(f"num_ways must be a power of two, got {num_ways}")
        self.num_ways = num_ways
        # bits[i] == 0 means "the LRU side is the left subtree of node i".
        self._bits = [0] * max(num_ways - 1, 1)
        self._paths = _touch_paths(num_ways)

    def touch(self, way: int) -> None:
        """Record an access to ``way``, protecting it from eviction."""
        if not 0 <= way < self.num_ways:
            raise ValueError(f"way {way} out of range")
        bits = self._bits
        for node, bit in self._paths[way]:
            bits[node] = bit

    def victim(self) -> int:
        """The slot the policy would evict next."""
        if self.num_ways == 1:
            return 0
        node = 0
        low, high = 0, self.num_ways
        while high - low > 1:
            mid = (low + high) // 2
            if self._bits[node] == 0:
                node = 2 * node + 1
                high = mid
            else:
                node = 2 * node + 2
                low = mid
        return low

    def reset(self) -> None:
        self._bits = [0] * max(self.num_ways - 1, 1)
