"""Energy and overhead models: EDP metrics and hardware-cost estimation."""

from repro.energy.power import core_power_mw, scheme_energy
from repro.energy.metrics import EnergyReport, energy_report, normalize_to
from repro.energy.overheads import (
    OverheadReport,
    acslt_gate_count,
    dcs_overheads,
    icslt_gate_count,
    trident_overheads,
)

__all__ = [
    "EnergyReport",
    "OverheadReport",
    "acslt_gate_count",
    "core_power_mw",
    "dcs_overheads",
    "energy_report",
    "icslt_gate_count",
    "normalize_to",
    "scheme_energy",
    "trident_overheads",
]
