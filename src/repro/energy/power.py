"""Core power model and per-run energy accounting.

Energy efficiency in the paper is the reciprocal of the energy-delay
product, with EDP = P_avg x t_exec x t_exec (§3.5.5).  P_avg is the
core's average power at the operating corner plus the scheme's power
overhead (the overhead percentages of §3.5.6 / §4.5.7 are folded in).

Core power scales from an STC reference using CV²f dynamics plus a
leakage component -- the standard first-order model, sufficient because
every reported result is *normalised to Razor at the same corner*, so
only the overhead-driven differences and execution times matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schemes.base import SchemeResult
from repro.energy.overheads import OverheadReport
from repro.pv.delaymodel import (
    Corner,
    STC,
    dynamic_energy_factor,
    leakage_power_factor,
    nominal_delay_factor,
)

#: Reference core power at the STC corner (mW), FabScalar-Core-1 scale.
CORE_POWER_STC_MW = 420.0
#: Fraction of STC core power that is leakage.
LEAKAGE_FRACTION_STC = 0.25


def core_power_mw(corner: Corner) -> float:
    """Average core power at ``corner`` (mW).

    Dynamic power scales with V² and with frequency (1/delay factor);
    leakage scales with the corner's leakage factor only.
    """
    dynamic_stc = CORE_POWER_STC_MW * (1.0 - LEAKAGE_FRACTION_STC)
    leakage_stc = CORE_POWER_STC_MW * LEAKAGE_FRACTION_STC
    frequency_ratio = nominal_delay_factor(STC) / nominal_delay_factor(corner)
    dynamic = dynamic_stc * dynamic_energy_factor(corner) * frequency_ratio
    leakage = leakage_stc * leakage_power_factor(corner)
    return dynamic + leakage


@dataclass(frozen=True)
class SchemeEnergy:
    """Energy/EDP figures of one scheme run."""

    scheme: str
    benchmark: str
    execution_time_ns: float
    average_power_mw: float
    energy_nj: float
    edp: float  # nJ x ns

    @property
    def efficiency(self) -> float:
        """Energy efficiency = 1 / EDP."""
        return 1.0 / self.edp if self.edp > 0 else float("inf")


def scheme_energy(
    result: SchemeResult,
    corner: Corner,
    overhead: OverheadReport | None = None,
) -> SchemeEnergy:
    """Energy accounting for one scheme result at ``corner``.

    ``overhead`` carries the scheme's power overhead (None for schemes
    that add no table hardware, e.g. Razor's baseline bookkeeping is
    considered part of the core).
    """
    power = core_power_mw(corner)
    if overhead is not None:
        power *= 1.0 + overhead.power_fraction
    time_ns = result.execution_time_ps / 1000.0
    energy_nj = power * 1e-3 * time_ns  # mW x ns = pJ; /1e3 -> nJ
    edp = energy_nj * time_ns
    return SchemeEnergy(
        scheme=result.scheme,
        benchmark=result.benchmark,
        execution_time_ns=time_ns,
        average_power_mw=power,
        energy_nj=energy_nj,
        edp=edp,
    )
