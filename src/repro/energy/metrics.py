"""Comparison metrics: normalised performance and energy efficiency.

All of the paper's scheme comparisons are normalised to Razor:
performance = Razor's execution time / scheme's execution time (higher
is better); energy efficiency = Razor's EDP / scheme's EDP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schemes.base import SchemeResult
from repro.energy.overheads import OverheadReport
from repro.energy.power import SchemeEnergy, scheme_energy
from repro.pv.delaymodel import Corner


@dataclass(frozen=True)
class EnergyReport:
    """Normalised comparison of one scheme against the baseline."""

    scheme: str
    benchmark: str
    normalized_penalty: float
    normalized_performance: float
    normalized_efficiency: float
    energy: SchemeEnergy


def energy_report(
    result: SchemeResult,
    baseline: SchemeResult,
    corner: Corner,
    overhead: OverheadReport | None = None,
    baseline_overhead: OverheadReport | None = None,
) -> EnergyReport:
    """Compare ``result`` against ``baseline`` (normally Razor)."""
    if result.benchmark != baseline.benchmark:
        raise ValueError("cannot compare results across benchmarks")
    energy = scheme_energy(result, corner, overhead)
    base_energy = scheme_energy(baseline, corner, baseline_overhead)
    penalty_ratio = (
        result.penalty_cycles / baseline.penalty_cycles
        if baseline.penalty_cycles
        else (0.0 if result.penalty_cycles == 0 else float("inf"))
    )
    return EnergyReport(
        scheme=result.scheme,
        benchmark=result.benchmark,
        normalized_penalty=penalty_ratio,
        normalized_performance=(
            base_energy.execution_time_ns / energy.execution_time_ns
        ),
        normalized_efficiency=base_energy.edp / energy.edp,
        energy=energy,
    )


def normalize_to(
    results: dict[str, SchemeResult],
    corner: Corner,
    overheads: dict[str, OverheadReport] | None = None,
    baseline: str = "Razor",
) -> dict[str, EnergyReport]:
    """Normalise a {scheme: result} mapping to one baseline scheme."""
    if baseline not in results:
        raise KeyError(f"baseline {baseline!r} missing from results")
    overheads = overheads or {}
    base = results[baseline]
    return {
        name: energy_report(
            result,
            base,
            corner,
            overhead=overheads.get(name),
            baseline_overhead=overheads.get(baseline),
        )
        for name, result in results.items()
    }
