"""Hardware-overhead estimation (the Cadence Encounter substitute).

The paper reports gate counts, area, wirelength, and power overheads of
the DCS and Trident components after placement and routing.  We estimate
the same quantities with a parametric model whose constants are
calibrated against the paper's reported numbers:

* RAM-organised storage (ICSLT tuples, CET EIDs) costs
  ``GATES_PER_RAM_BIT`` equivalent gates per bit -- calibrated so a
  128-entry, 18-bit-tag ICSLT lands at the paper's 567-gate CSLT.
* CAM/set-associative storage (ACSLT, with per-way match logic) costs
  ``GATES_PER_CAM_BIT`` per bit -- calibrated so the 32-entry/16-way
  ACSLT lands at the paper's 2255 gates.
* The surrounding controller, instruction buffer, and lookup logic cost
  fixed gate budgets, calibrated so the DCS-ICSLT total is ~1553 gates
  and the DCS-ACSLT total ~3241 gates (§3.5.6).
* Percent-of-pipeline figures use a FabScalar-Core-1-sized pipeline of
  ``PIPELINE_EQUIVALENT_GATES`` gates, back-computed from the paper's
  0.23 % area overhead for 1553 gates.
* Wirelength overhead follows a linear fit to the paper's three reported
  (area %, wirelength %) points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.tags import DCS_TAG_BITS, EID_BITS, OPCODE_BITS, OWM_BITS

#: Equivalent gates per stored bit, RAM organisation (calibrated).
GATES_PER_RAM_BIT = 0.246
#: Equivalent gates per stored bit, CAM/associative organisation (calibrated).
GATES_PER_CAM_BIT = 0.46
#: Choke Controller + opcode/OWM pipeline buffer + lookup logic (DCS).
DCS_CONTROLLER_GATES = 700
DCS_LOOKUP_GATES = 286
#: CDC + CCR + per-stage TDC budgets (Trident).
TRIDENT_CDC_GATES = 900
TRIDENT_CCR_GATES_PER_STAGE = 100
TRIDENT_TDC_GATES_PER_STAGE = 420

#: FabScalar-Core-1-equivalent pipeline size (back-computed: 1553 gates
#: correspond to the paper's 0.23 % area overhead).
PIPELINE_EQUIVALENT_GATES = 675_000

#: Linear fit of wirelength%% vs area%% over the paper's reported points
#: ((0.23, 0.77), (0.48, 0.85), (0.97, 1.12)).
_WIRE_FIT_INTERCEPT = 0.665
_WIRE_FIT_SLOPE = 0.463

#: Table structures toggle far more than the average pipeline gate;
#: power%% = activity_factor x area%% (calibrated per organisation).
_POWER_ACTIVITY_RAM = 3.7
_POWER_ACTIVITY_CAM = 2.5


@dataclass(frozen=True)
class OverheadReport:
    """Estimated hardware overheads of one scheme's added components."""

    scheme: str
    storage_gates: int
    support_gates: int
    area_percent: float
    wirelength_percent: float
    power_percent: float

    @property
    def total_gates(self) -> int:
        return self.storage_gates + self.support_gates

    @property
    def power_fraction(self) -> float:
        """Power overhead as a fraction (for energy accounting)."""
        return self.power_percent / 100.0


def icslt_gate_count(entries: int, tag_bits: int = DCS_TAG_BITS) -> int:
    """Equivalent gate count of a fully-associative (RAM) ICSLT."""
    if entries < 1:
        raise ValueError("entries must be positive")
    return math.ceil(entries * tag_bits * GATES_PER_RAM_BIT)


def acslt_gate_count(entries: int, associativity: int) -> int:
    """Equivalent gate count of a set-associative (CAM-style) ACSLT.

    Each tuple stores the errant (opcode, OWM) key plus ``associativity``
    previous-cycle (opcode, OWM) ways.
    """
    if entries < 1 or associativity < 1:
        raise ValueError("entries and associativity must be positive")
    pair_bits = OPCODE_BITS + OWM_BITS
    bits_per_entry = pair_bits * (1 + associativity)
    return math.ceil(entries * bits_per_entry * GATES_PER_CAM_BIT)


def cet_gate_count(entries: int, eid_bits: int = EID_BITS) -> int:
    """Equivalent gate count of Trident's Choke Error Table."""
    if entries < 1:
        raise ValueError("entries must be positive")
    return math.ceil(entries * eid_bits * GATES_PER_RAM_BIT)


def _percentages(
    total_gates: int, activity: float
) -> tuple[float, float, float]:
    area = total_gates / PIPELINE_EQUIVALENT_GATES * 100.0
    wirelength = _WIRE_FIT_INTERCEPT + _WIRE_FIT_SLOPE * area
    power = activity * area
    return area, wirelength, power


def dcs_overheads(
    variant: str = "icslt", entries: int = 128, associativity: int = 16
) -> OverheadReport:
    """Overheads of one DCS variant (Section 3.5.6's table)."""
    if variant == "icslt":
        storage = icslt_gate_count(entries)
        activity = _POWER_ACTIVITY_RAM
        name = "DCS-ICSLT"
    elif variant == "acslt":
        storage = acslt_gate_count(entries, associativity)
        activity = _POWER_ACTIVITY_CAM
        name = "DCS-ACSLT"
    else:
        raise ValueError(f"unknown DCS variant {variant!r}")
    support = DCS_CONTROLLER_GATES + DCS_LOOKUP_GATES
    area, wire, power = _percentages(storage + support, activity)
    return OverheadReport(
        scheme=name,
        storage_gates=storage,
        support_gates=support,
        area_percent=area,
        wirelength_percent=wire,
        power_percent=power,
    )


def trident_overheads(
    cet_entries: int = 128, monitored_stages: int = 9
) -> OverheadReport:
    """Overheads of Trident (Section 4.5.7).

    ``monitored_stages`` is the number of pipestages between decode and
    writeback equipped with a TDC and CCR slot.
    """
    storage = cet_gate_count(cet_entries)
    support = (
        TRIDENT_CDC_GATES
        + monitored_stages * (TRIDENT_CCR_GATES_PER_STAGE + TRIDENT_TDC_GATES_PER_STAGE)
    )
    area, wire, power = _percentages(storage + support, _POWER_ACTIVITY_RAM * 0.455)
    return OverheadReport(
        scheme="Trident",
        storage_gates=storage,
        support_gates=support,
        area_percent=area,
        wirelength_percent=wire,
        power_percent=power,
    )
