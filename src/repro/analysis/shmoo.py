"""Clock-margin shmoo sweeps over fabricated chip populations.

A shmoo plot answers: *at which clock margin does each chip of a batch
run clean?*  Because per-cycle sensitised arrival times do not depend on
the clock, one dynamic-timing pass per chip supports every margin point
-- the sweep just moves the setup/hold thresholds over the cached
arrivals.  This quantifies the paper's batch-variation claim and the
guardband a static scheme needs to cover a population (versus the small
per-chip tables DCS/Trident invest in instead).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.trace import InstructionTrace
from repro.circuits.ex_stage import ExStage


@dataclass
class ShmooResult:
    """Outcome of one shmoo sweep."""

    margins: np.ndarray  # clock margins over the PV-free critical path
    chip_seeds: tuple[int, ...]
    max_error_rates: np.ndarray  # (chips, margins) setup-violation rates
    min_error_rates: np.ndarray  # (chips, margins) hold-violation rates
    clean_threshold: float

    @property
    def error_rates(self) -> np.ndarray:
        """Combined per-(chip, margin) error rate."""
        return self.max_error_rates + self.min_error_rates

    def yield_curve(self) -> np.ndarray:
        """Fraction of chips whose error rate is below the clean threshold,
        per margin point."""
        clean = self.error_rates <= self.clean_threshold
        return clean.mean(axis=0)

    def margin_for_yield(self, target: float = 1.0) -> float | None:
        """Smallest swept margin achieving at least ``target`` yield."""
        curve = self.yield_curve()
        for margin, value in zip(self.margins, curve):
            if value >= target:
                return float(margin)
        return None

    def render(self) -> str:
        """ASCII shmoo: one row per chip, '.' clean / 'x' erring."""
        lines = ["shmoo (rows = chips, cols = clock margins; '.' clean, 'x' errors)"]
        header = "        " + " ".join(f"{m:5.2f}" for m in self.margins)
        lines.append(header)
        clean = self.error_rates <= self.clean_threshold
        for row, seed in enumerate(self.chip_seeds):
            cells = " ".join(
                "    ." if clean[row, col] else "    x"
                for col in range(len(self.margins))
            )
            lines.append(f"chip{seed:3d} {cells}")
        lines.append(
            "yield   " + " ".join(f"{v:5.2f}" for v in self.yield_curve())
        )
        return "\n".join(lines)


def shmoo_sweep(
    stage: ExStage,
    trace: InstructionTrace,
    chip_seeds,
    margins=None,
    clean_threshold: float = 0.0,
    hold_fraction: float | None = None,
    chunk: int = 2048,
) -> ShmooResult:
    """Sweep clock margins over a chip population.

    ``margins`` are fractions over the PV-free critical path (default
    0.00 .. 0.60).  The hold constraint stays at the stage's *designed*
    absolute value regardless of margin -- hold violations are
    clock-frequency-independent in silicon, and the hold-fix pads were
    planned against the design-time constraint.  Pass ``hold_fraction``
    to override with a fixed fraction of each swept period instead
    (modelling a detection window that scales with the clock).
    """
    if margins is None:
        margins = np.arange(0.0, 0.61, 0.1)
    margins = np.asarray(margins, dtype=float)
    chip_seeds = tuple(int(seed) for seed in chip_seeds)
    if not chip_seeds:
        raise ValueError("need at least one chip seed")

    critical = stage.nominal_critical_delay
    inputs = trace.encode_inputs(stage.alu)

    max_rates = np.zeros((len(chip_seeds), len(margins)))
    min_rates = np.zeros((len(chip_seeds), len(margins)))
    for row, seed in enumerate(chip_seeds):
        chip = stage.fabricate(seed=seed)
        timings = stage.timings(chip, inputs, chunk=chunk)
        for col, margin in enumerate(margins):
            period = critical * (1.0 + margin)
            hold = (
                hold_fraction * period
                if hold_fraction is not None
                else stage.hold_constraint
            )
            max_rates[row, col] = float(timings.max_violations(period).mean())
            min_rates[row, col] = float(timings.min_violations(hold).mean())

    return ShmooResult(
        margins=margins,
        chip_seeds=chip_seeds,
        max_error_rates=max_rates,
        min_error_rates=min_rates,
        clean_threshold=clean_threshold,
    )
