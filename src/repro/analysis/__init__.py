"""Population analytics: shmoo sweeps and fabrication-yield studies.

The paper's motivation rests on a population claim -- "a batch of
identical chips may have a large variation in choke paths, post
silicon" -- and on the resulting design question of how much clock
guardband a *static* scheme would need to cover a whole batch.  This
package quantifies both.
"""

from repro.analysis.shmoo import ShmooResult, shmoo_sweep

__all__ = ["ShmooResult", "shmoo_sweep"]
