"""Regenerates Fig. 3.8 (DCS-ICSLT accuracy vs table size)."""

from repro.experiments.fig3_08 import run


def test_fig3_08(ctx, run_once):
    result = run_once(run, ctx)
    table = result.tables[0]
    assert len(table.rows) == 6
    for row in table.rows:
        accuracies = row[1:]
        assert all(b >= a - 1e-9 for a, b in zip(accuracies, accuracies[1:]))
