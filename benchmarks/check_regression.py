#!/usr/bin/env python
"""CI perf-regression gate.

Merges the pytest-benchmark results and the parallel-scaling numbers
into one ``BENCH_ci.json`` artifact, then compares the tier-1 smoke
benchmarks against the committed baseline
(``benchmarks/baseline.json``).  A benchmark whose mean wall-clock
exceeds its baseline by more than the tolerance (default 30%) — or a
baselined benchmark that silently stopped running — fails the job.

With ``--metrics`` it additionally diffs key telemetry counters from a
``metrics.json`` (written by ``--metrics-out``) against the baseline's
``metrics`` section: checkpoint hit-rate, span wall-clock totals, and
the pinned domain counters.  Metric drift beyond the tolerance
(default 20%) only **warns** by default — counters drift for
legitimate reasons (config changes, new instrumentation) far more
often than they signal a regression, so they inform the reviewer
instead of gating the merge.  With ``--strict`` any metric drifting
beyond the tolerance fails the job, so CI can opt in per-job.

With ``--events PATH`` the per-kind event counts of an
``events.jsonl`` (written by ``--events-out``) are diffed against the
baseline's ``events.counts`` section.  Event streams are
schedule-dependent by design (steal/heartbeat/clock counts vary run to
run), so this check **never gates** — not even under ``--strict`` — it
only flags fleets that stopped emitting lifecycle events or started
emitting fault events (resubmit/partition/crash) on a healthy-run
baseline.

With ``--ledger DIR`` the single-baseline compare is replaced by
trajectory-aware gating: the newest run in the run ledger
(``--ledger-dir``) is scored against its own trailing window with a
median-absolute-deviation z-score (see ``repro.obs.trends``), so a
metric has to leave its *own* recent distribution — not an arbitrary
pinned value — to be flagged.  Ledger drift warns unless ``--strict``.

Usage (mirrors the CI perf and telemetry jobs)::

    python benchmarks/check_regression.py \\
        --bench BENCH_bench.json --scaling BENCH_scaling.json \\
        --baseline benchmarks/baseline.json --out BENCH_ci.json
    python benchmarks/check_regression.py \\
        --metrics metrics.json --out BENCH_telemetry.json
    python benchmarks/check_regression.py \\
        --ledger .ledger --out BENCH_ledger.json
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from pathlib import Path


#: global-RNG functions whose call sites the lint flags; a seeded
#: ``random.Random(seed)`` instance is the sanctioned alternative
_GLOBAL_RNG_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "getrandbits",
})


def lint_seed_hygiene(root: str) -> list[str]:
    """Ban nondeterminism sources under ``root`` (AST-based).

    Two classes of call site are flagged:

    * builtin ``hash()`` — salted per process (PYTHONHASHSEED), so any
      value derived from it silently varies between a serial run and
      its fleet workers.  Derive seeds/positions through ``zlib.crc32``
      (see ``repro.experiments.charstudy.stable_seed``).
    * module-level ``random.*()`` — the global RNG's state depends on
      import order and everything else that touched it, so its output
      differs between backends.  Use a seeded ``random.Random(seed)``
      instance (or ``repro.runtime.backoff`` for jitter) instead.

    Mentions in strings and docstrings are fine; only calls are flagged.
    """
    findings = []
    for path in sorted(Path(root).rglob("*.py")):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError as exc:
            findings.append(f"{path}:{exc.lineno}: unparseable: {exc.msg}")
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "hash":
                findings.append(
                    f"{path}:{node.lineno}: builtin hash() is salted per "
                    f"process; derive seeds/positions via zlib.crc32 "
                    f"(stable_seed) instead"
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"
                and node.func.attr in _GLOBAL_RNG_FNS
            ):
                findings.append(
                    f"{path}:{node.lineno}: global random.{node.func.attr}() "
                    f"is unseeded and schedule-dependent; use a seeded "
                    f"random.Random(seed) instance instead"
                )
    return findings


def _ledger_modules():
    """Import the ledger/trends modules, adding ``src`` if needed.

    CI invokes this script without PYTHONPATH; the repository layout is
    fixed, so fall back to ``<repo>/src`` next to ``benchmarks/``.
    """
    try:
        from repro.obs import ledger, trends
    except ImportError:
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
        from repro.obs import ledger, trends
    return ledger, trends


def load_bench_means(path: str) -> dict[str, float]:
    """name -> mean seconds from a pytest-benchmark JSON file."""
    with open(path) as handle:
        payload = json.load(handle)
    return {
        bench["name"]: float(bench["stats"]["mean"])
        for bench in payload.get("benchmarks", [])
    }


def telemetry_observations(metrics_path: str) -> dict[str, float]:
    """Counters + derived values from a ``metrics.json`` worth diffing."""
    with open(metrics_path) as handle:
        doc = json.load(handle)
    counters = doc.get("counters", {})
    observed: dict[str, float] = dict(counters)
    hits = counters.get("checkpoint.hits", 0)
    misses = counters.get("checkpoint.misses", 0)
    if hits + misses:
        observed["derived.checkpoint_hit_rate"] = hits / (hits + misses)
    observed["derived.span_total_s"] = sum(
        entry.get("sum", 0.0)
        for name, entry in doc.get("histograms", {}).items()
        if name.startswith("span.") and name.endswith(".s")
    )
    return observed


def diff_metrics(
    observed: dict[str, float], baseline_metrics: dict, tolerance: float
) -> tuple[dict, list[str]]:
    """Compare observed counters to the baseline; drift only warns."""
    checked = {}
    warnings = []
    for name, expected in baseline_metrics.get("counters", {}).items():
        measured = observed.get(name)
        drift = None
        if measured is not None and expected:
            drift = (measured - expected) / expected
        checked[name] = {
            "baseline": expected,
            "measured": round(measured, 6) if measured is not None else None,
            "drift": round(drift, 4) if drift is not None else None,
        }
        if measured is None:
            warnings.append(f"{name}: baselined metric not present in metrics.json")
        elif drift is not None and abs(drift) > tolerance:
            warnings.append(
                f"{name}: {measured:g} drifted {drift:+.0%} from "
                f"baseline {expected:g} (tolerance {tolerance:.0%})"
            )
    return checked, warnings


def diff_events(
    events_path: str, baseline_events: dict, tolerance: float
) -> tuple[dict, list[str]]:
    """Per-kind event-count drift vs the baseline; informational only.

    Event streams are schedule-dependent by design (steals depend on
    queue-drain order, clock samples on heartbeat timing), so this
    never gates — not even under ``--strict``.  Baselined kinds with a
    zero expected count (resubmit/partition/crash/downgrade) warn on
    *any* occurrence: they signal an unhealthy fleet, not drift.
    """
    try:
        from repro.obs.events import read_events
    except ImportError:
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
        from repro.obs.events import read_events

    counts: dict[str, int] = {}
    for event in read_events(events_path):
        kind = event.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
    checked = {}
    warnings = []
    for kind, expected in baseline_events.get("counts", {}).items():
        measured = counts.get(kind, 0)
        drift = (measured - expected) / expected if expected else None
        checked[kind] = {
            "baseline": expected,
            "measured": measured,
            "drift": round(drift, 4) if drift is not None else None,
        }
        if expected == 0 and measured:
            warnings.append(
                f"events.{kind}: {measured} event(s) on a run baselined "
                f"at zero (fleet fault indicator)"
            )
        elif drift is not None and abs(drift) > tolerance:
            warnings.append(
                f"events.{kind}: {measured} drifted {drift:+.0%} from "
                f"baseline {expected} (tolerance {tolerance:.0%})"
            )
    # un-baselined kinds (heartbeat/steal/clock...) are reported but
    # never compared — their counts are pure scheduling noise
    for kind in sorted(set(counts) - set(checked)):
        checked[kind] = {"baseline": None, "measured": counts[kind],
                         "drift": None}
    return checked, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench",
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--scaling",
                        help="bench_parallel_scaling.py --json output")
    parser.add_argument("--metrics",
                        help="telemetry metrics.json (from --metrics-out) "
                        "to diff against the baseline's metrics section")
    parser.add_argument("--ledger", metavar="DIR",
                        help="run-ledger directory: gate the newest run "
                        "against its own trailing window (MAD z-score) "
                        "instead of a pinned baseline")
    parser.add_argument("--events", metavar="PATH",
                        help="events.jsonl (from --events-out): warn when "
                        "per-kind event counts drift from the baseline's "
                        "events.counts (schedule-dependent; never gates)")
    parser.add_argument("--backends",
                        help="bench_backends.py --json output: warn when a "
                        "backend's overhead over inproc exceeds the "
                        "baseline's backends.max_overhead (never gates)")
    parser.add_argument("--audit",
                        help="bench_audit.py --json output: warn when the "
                        "flight recorder's full/reservoir overhead over the "
                        "audit-off leg exceeds the baseline's audit "
                        "watermarks (never gates)")
    parser.add_argument("--service",
                        help="bench_service.py --json output: warn when "
                        "submit-to-first-byte latency or dedup-hit "
                        "throughput crosses the baseline's service "
                        "watermarks (never gates)")
    parser.add_argument("--baseline", default="benchmarks/baseline.json")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override the baseline file's tolerance")
    parser.add_argument("--strict", action="store_true",
                        help="fail (exit non-zero) on metric/ledger drift "
                        "beyond tolerance instead of warning")
    parser.add_argument("--lint", action="store_true",
                        help="seed-hygiene lint: fail on builtin hash() "
                        "call sites under --lint-root (no perf inputs "
                        "needed)")
    parser.add_argument("--lint-root", default="src", metavar="DIR",
                        help="directory tree the lint scans (default: src)")
    parser.add_argument("--out",
                        default=os.environ.get("CHECK_REGRESSION_OUT",
                                               "BENCH_ci.json"),
                        help="merged report path (default: BENCH_ci.json, "
                        "or $CHECK_REGRESSION_OUT; ignored by --lint)")
    args = parser.parse_args(argv)
    if args.lint:
        findings = lint_seed_hygiene(args.lint_root)
        if findings:
            print("SEED-HYGIENE LINT:", file=sys.stderr)
            for finding in findings:
                print(f"  {finding}", file=sys.stderr)
            return 1
        print(f"seed-hygiene lint: no builtin hash() or unseeded "
              f"random.* call sites under {args.lint_root}/")
        return 0
    if not (args.bench or args.metrics or args.ledger or args.backends
            or args.events or args.audit or args.service):
        parser.error(
            "nothing to check: pass --bench, --metrics, --ledger, "
            "--backends, --events, --audit and/or --service"
        )

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    tolerance = (
        args.tolerance if args.tolerance is not None
        else float(baseline.get("tolerance", 0.30))
    )

    means = load_bench_means(args.bench) if args.bench else {}
    scaling = None
    if args.scaling:
        with open(args.scaling) as handle:
            scaling = json.load(handle)

    regressions = []
    checked = {}
    if scaling is not None:
        # Gate the fan-out wall-clock per jobs level, same tolerance as
        # the benchmark means.  Baselines are padded over a warm run;
        # a missing level (the bench's --jobs set changed) also fails,
        # like a baselined benchmark that stopped running.
        walls = {
            str(entry["jobs"]): float(entry["wall_s"])
            for entry in scaling.get("scaling", [])
        }
        for jobs, allowed_wall in baseline.get("scaling_wall_s", {}).items():
            limit = allowed_wall * (1.0 + tolerance)
            measured = walls.get(str(jobs))
            checked[f"parallel_scaling_jobs{jobs}"] = {
                "baseline_s": allowed_wall,
                "limit_s": round(limit, 3),
                "measured_s": round(measured, 3) if measured is not None else None,
            }
            if measured is None:
                regressions.append(
                    f"parallel_scaling_jobs{jobs}: baselined jobs level "
                    f"did not run"
                )
            elif measured > limit:
                regressions.append(
                    f"parallel_scaling_jobs{jobs}: {measured:.2f}s exceeds "
                    f"{allowed_wall:.2f}s baseline by more than "
                    f"{tolerance:.0%} (limit {limit:.2f}s)"
                )
    if args.bench:
        for name, allowed_mean in baseline.get("bench_mean_s", {}).items():
            limit = allowed_mean * (1.0 + tolerance)
            measured = means.get(name)
            checked[name] = {
                "baseline_s": allowed_mean,
                "limit_s": round(limit, 3),
                "measured_s": round(measured, 3) if measured is not None else None,
            }
            if measured is None:
                regressions.append(f"{name}: baselined benchmark did not run")
            elif measured > limit:
                regressions.append(
                    f"{name}: {measured:.2f}s exceeds {allowed_mean:.2f}s "
                    f"baseline by more than {tolerance:.0%} (limit {limit:.2f}s)"
                )

    metrics_checked = {}
    metrics_warnings = []
    if args.metrics:
        baseline_metrics = baseline.get("metrics", {})
        metrics_tolerance = (
            args.tolerance if args.tolerance is not None
            else float(baseline_metrics.get("tolerance", 0.20))
        )
        observed = telemetry_observations(args.metrics)
        metrics_checked, metrics_warnings = diff_metrics(
            observed, baseline_metrics, metrics_tolerance
        )

    events_checked = {}
    events_warnings = []
    if args.events:
        baseline_events = baseline.get("events", {})
        events_tolerance = (
            args.tolerance if args.tolerance is not None
            else float(baseline_events.get("tolerance", 0.5))
        )
        events_checked, events_warnings = diff_events(
            args.events, baseline_events, events_tolerance
        )

    backends_doc = None
    backends_warnings = []
    if args.backends:
        with open(args.backends) as handle:
            backends_doc = json.load(handle)
        max_overhead = float(
            baseline.get("backends", {}).get("max_overhead", 4.0)
        )
        for entry in backends_doc.get("backends", []):
            if entry.get("overhead", 0.0) > max_overhead:
                backends_warnings.append(
                    f"backend {entry['backend']}: {entry['wall_s']:g}s is "
                    f"{entry['overhead']:g}x the inproc reference "
                    f"(watermark {max_overhead:g}x)"
                )

    audit_doc = None
    audit_warnings = []
    if args.audit:
        with open(args.audit) as handle:
            audit_doc = json.load(handle)
        baseline_audit = baseline.get("audit", {})
        for leg, default_max in (("full", 2.0), ("reservoir", 2.0)):
            watermark = float(
                baseline_audit.get(f"max_overhead_{leg}", default_max)
            )
            overhead = float(audit_doc.get(f"overhead_{leg}", 0.0))
            if overhead > watermark:
                audit_warnings.append(
                    f"audit {leg}: {overhead:g}x the audit-off sweep "
                    f"(watermark {watermark:g}x)"
                )

    service_doc = None
    service_warnings = []
    if args.service:
        with open(args.service) as handle:
            service_doc = json.load(handle)
        baseline_service = baseline.get("service", {})
        max_first_byte = float(
            baseline_service.get("max_submit_first_byte_s", 2.0)
        )
        first_byte = float(service_doc.get("submit_first_byte_s", 0.0))
        if first_byte > max_first_byte:
            service_warnings.append(
                f"service submit-to-first-byte: {first_byte:g}s exceeds the "
                f"{max_first_byte:g}s watermark"
            )
        min_dedup_rps = float(baseline_service.get("min_dedup_hit_rps", 20.0))
        dedup_rps = service_doc.get("dedup_hit_rps")
        if dedup_rps is not None and float(dedup_rps) < min_dedup_rps:
            service_warnings.append(
                f"service dedup-hit throughput: {dedup_rps:g} req/s is below "
                f"the {min_dedup_rps:g} req/s watermark"
            )

    ledger_findings = []
    ledger_warnings = []
    if args.ledger:
        ledger_mod, trends = _ledger_modules()
        records = ledger_mod.RunLedger(args.ledger).records()
        findings = trends.detect_drift(records)
        for finding in findings:
            if finding["drifted"]:
                z = finding["z"]
                z_text = f"{z:+.1f}" if z != float("inf") else "inf"
                ledger_warnings.append(
                    f"{finding['metric']}: {finding['value']:g} is {z_text} "
                    f"MAD-sigma from its window median "
                    f"{finding['baseline_median']:g} "
                    f"(n={finding['window']}, threshold {finding['threshold']})"
                )
        ledger_findings = [
            # strict JSON has no Infinity; a zero-MAD jump reports null z
            {**f, "z": f["z"] if abs(f["z"]) != float("inf") else None}
            for f in findings
            if f["drifted"] or abs(f["z"]) > f["threshold"] / 2
        ]
        if not records:
            print(f"ledger at {args.ledger} is empty; nothing to gate")
        elif not findings:
            print(f"ledger has {len(records)} run(s); "
                  "need more history before drift gating kicks in")

    report = {
        "tolerance": tolerance,
        "bench_mean_s": {name: round(mean, 3) for name, mean in means.items()},
        "checked": checked,
        "scaling": scaling,
        "metrics": metrics_checked,
        "metrics_warnings": metrics_warnings,
        "events": events_checked,
        "events_warnings": events_warnings,
        "backends": backends_doc,
        "backends_warnings": backends_warnings,
        "audit": audit_doc,
        "audit_warnings": audit_warnings,
        "service": service_doc,
        "service_warnings": service_warnings,
        "ledger": ledger_findings,
        "ledger_warnings": ledger_warnings,
        "strict": args.strict,
        "regressions": regressions,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"merged perf report written to {args.out}")

    for name, info in checked.items():
        status = "REGRESSED" if any(r.startswith(name) for r in regressions) else "ok"
        measured = info["measured_s"]
        measured_text = f"{measured:.2f}s" if measured is not None else "missing"
        print(f"  {name:<28s} {measured_text:>9s} "
              f"(baseline {info['baseline_s']:.2f}s, limit {info['limit_s']:.2f}s) "
              f"{status}")
    for name, info in metrics_checked.items():
        drift = info["drift"]
        drift_text = f"{drift:+.0%}" if drift is not None else "n/a"
        drifted = any(w.startswith(name) for w in metrics_warnings)
        status = "DRIFTED" if drifted else "ok"
        print(f"  {name:<36s} {info['measured']!s:>12s} "
              f"(baseline {info['baseline']!s}, drift {drift_text}) {status}")
    for kind, info in events_checked.items():
        drift = info["drift"]
        drift_text = f"{drift:+.0%}" if drift is not None else "n/a"
        drifted = any(w.startswith(f"events.{kind}:") for w in events_warnings)
        status = "DRIFTED" if drifted else "ok"
        baseline_text = (
            str(info["baseline"]) if info["baseline"] is not None else "-"
        )
        print(f"  events.{kind:<28s} {info['measured']:>5d} "
              f"(baseline {baseline_text}, drift {drift_text}) {status}")
    if backends_warnings:
        # Backend overhead is environment-sensitive (CI machines vary);
        # it informs the reviewer and never gates, even under --strict.
        print("BACKEND OVERHEAD (warning only):", file=sys.stderr)
        for warning in backends_warnings:
            print(f"  {warning}", file=sys.stderr)
    if audit_warnings:
        # Recording cost is environment-sensitive like backend overhead;
        # it informs the reviewer and never gates, even under --strict.
        print("AUDIT OVERHEAD (warning only):", file=sys.stderr)
        for warning in audit_warnings:
            print(f"  {warning}", file=sys.stderr)
    if service_warnings:
        # Service latency/throughput is environment-sensitive (CI machines
        # vary); byte-identity of served reports is the hard gate, so
        # these numbers inform the reviewer and never gate, even under
        # --strict.
        print("SERVICE OVERHEAD (warning only):", file=sys.stderr)
        for warning in service_warnings:
            print(f"  {warning}", file=sys.stderr)
    if events_warnings:
        # Event streams are schedule-dependent by design; counts inform
        # the reviewer and never gate, even under --strict.
        print("EVENT-COUNT DRIFT (warning only):", file=sys.stderr)
        for warning in events_warnings:
            print(f"  {warning}", file=sys.stderr)
    drift_warnings = metrics_warnings + ledger_warnings
    if drift_warnings:
        # Counter drift informs by default; --strict turns it into a gate.
        mode = "gating" if args.strict else "warning only"
        print(f"TELEMETRY DRIFT ({mode}):", file=sys.stderr)
        for warning in drift_warnings:
            print(f"  {warning}", file=sys.stderr)
    if regressions:
        print("PERF REGRESSION:", file=sys.stderr)
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    if args.strict and drift_warnings:
        return 1
    print("no perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
