#!/usr/bin/env python
"""CI perf-regression gate.

Merges the pytest-benchmark results and the parallel-scaling numbers
into one ``BENCH_ci.json`` artifact, then compares the tier-1 smoke
benchmarks against the committed baseline
(``benchmarks/baseline.json``).  A benchmark whose mean wall-clock
exceeds its baseline by more than the tolerance (default 30%) — or a
baselined benchmark that silently stopped running — fails the job.

Usage (mirrors the CI perf job)::

    python benchmarks/check_regression.py \\
        --bench BENCH_bench.json --scaling BENCH_scaling.json \\
        --baseline benchmarks/baseline.json --out BENCH_ci.json
"""

from __future__ import annotations

import argparse
import json
import sys


def load_bench_means(path: str) -> dict[str, float]:
    """name -> mean seconds from a pytest-benchmark JSON file."""
    with open(path) as handle:
        payload = json.load(handle)
    return {
        bench["name"]: float(bench["stats"]["mean"])
        for bench in payload.get("benchmarks", [])
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", required=True,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--scaling",
                        help="bench_parallel_scaling.py --json output")
    parser.add_argument("--baseline", default="benchmarks/baseline.json")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override the baseline file's tolerance")
    parser.add_argument("--out", default="BENCH_ci.json")
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    tolerance = (
        args.tolerance if args.tolerance is not None
        else float(baseline.get("tolerance", 0.30))
    )

    means = load_bench_means(args.bench)
    scaling = None
    if args.scaling:
        with open(args.scaling) as handle:
            scaling = json.load(handle)

    regressions = []
    checked = {}
    for name, allowed_mean in baseline.get("bench_mean_s", {}).items():
        limit = allowed_mean * (1.0 + tolerance)
        measured = means.get(name)
        checked[name] = {
            "baseline_s": allowed_mean,
            "limit_s": round(limit, 3),
            "measured_s": round(measured, 3) if measured is not None else None,
        }
        if measured is None:
            regressions.append(f"{name}: baselined benchmark did not run")
        elif measured > limit:
            regressions.append(
                f"{name}: {measured:.2f}s exceeds {allowed_mean:.2f}s "
                f"baseline by more than {tolerance:.0%} (limit {limit:.2f}s)"
            )

    report = {
        "tolerance": tolerance,
        "bench_mean_s": {name: round(mean, 3) for name, mean in means.items()},
        "checked": checked,
        "scaling": scaling,
        "regressions": regressions,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"merged perf report written to {args.out}")

    for name, info in checked.items():
        status = "REGRESSED" if any(r.startswith(name) for r in regressions) else "ok"
        measured = info["measured_s"]
        measured_text = f"{measured:.2f}s" if measured is not None else "missing"
        print(f"  {name:<28s} {measured_text:>9s} "
              f"(baseline {info['baseline_s']:.2f}s, limit {info['limit_s']:.2f}s) "
              f"{status}")
    if regressions:
        print("PERF REGRESSION:", file=sys.stderr)
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    print("no perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
