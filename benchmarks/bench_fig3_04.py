"""Regenerates Fig. 3.4 (errant vs error-free occurrences, vortex)."""

from repro.experiments.fig3_04 import run


def test_fig3_04(ctx, run_once):
    result = run_once(run, ctx)
    table = result.tables[0]
    assert len(table.rows) == 8
    for row in table.rows:
        assert row[2] + row[3] == __import__("pytest").approx(100.0, abs=0.1)
