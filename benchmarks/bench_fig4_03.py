"""Regenerates Fig. 4.3 (error/no-error occurrence distribution)."""

import pytest

from repro.experiments.fig4_03 import run


def test_fig4_03(ctx, run_once):
    result = run_once(run, ctx)
    table = result.tables[0]
    assert len(table.rows) == 8
    for row in table.rows:
        assert row[1] + row[2] + row[3] == pytest.approx(100.0, abs=0.2)
