#!/usr/bin/env python
"""Measure cycle-audit overhead: off vs full vs reservoir sampling.

All five scheme state machines replay the same synthetic error trace
three times in-process — audit disabled, audit at ``policy=full``, and
audit at ``policy=reservoir:K`` — and the wall-clock ratios are the
quantities the CI gate watches (warn-only, ``check_regression.py
--audit``) to catch the flight recorder's hot-path cost creeping into
uninstrumented runs.  The disabled leg is the contract: schemes pay one
``audit.get()`` per simulate call plus a local ``None`` check per
event, so ``overhead_full`` measures recording, not plumbing.

Usage::

    python benchmarks/bench_audit.py
    python benchmarks/bench_audit.py --cycles 50000 --json BENCH_audit.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

import numpy as np  # noqa: E402

from repro.core import dcs as dcs_mod  # noqa: E402
from repro.core.schemes import hfg as hfg_mod  # noqa: E402
from repro.core.schemes import ocst as ocst_mod  # noqa: E402
from repro.core.schemes import razor as razor_mod  # noqa: E402
from repro.core.trident import controller as trident_mod  # noqa: E402
from repro.obs import audit  # noqa: E402
from repro.qa.circuits import synthetic_error_trace  # noqa: E402

DEFAULT_CYCLES = 50_000
DEFAULT_REPEATS = 3
DEFAULT_ERR_RATE = 0.05


def _build_trace(cycles: int, err_rate: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    err_class = np.where(
        rng.random(cycles) < err_rate,
        rng.integers(1, 4, size=cycles),
        0,
    ).astype(np.int8)
    instr = rng.integers(0, 64, size=cycles)
    return synthetic_error_trace(
        err_class,
        instr_sens=instr,
        instr_init=np.roll(instr, 1),
        benchmark="bench-audit",
    )


def _schemes():
    return (
        razor_mod.RazorScheme(),
        hfg_mod.HfgScheme(),
        ocst_mod.OcstScheme(),
        dcs_mod.DcsScheme("icslt", capacity=64, associativity=4),
        trident_mod.TridentScheme(cet_capacity=64),
    )


def run_once(trace, policy: str | None) -> tuple[float, int]:
    """Wall seconds for one full scheme sweep; records captured."""
    records = 0
    previous = audit.get()
    sink = None
    if policy is not None:
        sink = audit.enable(audit.AuditRecorder(policy=policy))
    else:
        audit.disable()
    try:
        start = time.perf_counter()
        for scheme in _schemes():
            scheme.simulate(trace)
        elapsed = time.perf_counter() - start
        if sink is not None:
            records = sum(len(run.columns["cycle"]) for run in sink.runs)
    finally:
        if previous is None:
            audit.disable()
        else:
            audit.enable(previous)
    return elapsed, records


def measure(trace, policy: str | None, repeats: int) -> tuple[float, int]:
    best, records = min(run_once(trace, policy) for _ in range(repeats))
    return best, records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=DEFAULT_CYCLES)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--err-rate", type=float, default=DEFAULT_ERR_RATE)
    parser.add_argument("--reservoir", type=int, default=512,
                        help="K for the reservoir-sampled leg")
    parser.add_argument("--json", help="also write the numbers to this file")
    args = parser.parse_args(argv)

    trace = _build_trace(args.cycles, args.err_rate)
    legs = (
        ("off", None),
        ("full", "full"),
        ("reservoir", f"reservoir:{args.reservoir}:0"),
    )
    results = {}
    reference = None
    for name, policy in legs:
        elapsed, records = measure(trace, policy, args.repeats)
        if reference is None:
            reference = elapsed
        results[name] = {
            "wall_s": round(elapsed, 4),
            "overhead": round(elapsed / reference, 3),
            "records": records,
        }
        print(
            f"audit={name:<10s} wall={elapsed:7.3f}s "
            f"overhead={elapsed / reference:5.2f}x records={records}",
            flush=True,
        )

    payload = {
        "cycles": args.cycles,
        "err_rate": args.err_rate,
        "repeats": args.repeats,
        "cpu_count": os.cpu_count(),
        "legs": results,
        "overhead_full": results["full"]["overhead"],
        "overhead_reservoir": results["reservoir"]["overhead"],
    }
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"audit numbers written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
