#!/usr/bin/env python
"""Measure service-path overhead: submit-to-first-byte and dedup hits.

Boots the simulation service in-process (``ServiceThread``) against a
throwaway state dir and times the two quantities a service user feels:

* **submit-to-first-byte** — wall seconds from ``POST /jobs`` until the
  first SSE frame of the job's live event stream arrives.  This is the
  scheduling + event-plumbing overhead in front of the simulation
  itself, so the leg uses a small fast-config run.
* **dedup-hit throughput** — identical resubmissions served from the
  report store (no recompute).  Each round trip is a submit (born-done
  dedup job) plus a full report fetch, so the number is end-to-end
  requests/second through the HTTP layer, not a cache microbenchmark.

The CI gate watches both warn-only (``check_regression.py --service``)
against the baseline's ``service`` watermarks; correctness of the served
bytes is enforced elsewhere (the ``service_vs_cli`` oracle and the CI
``cmp`` gate), so this file measures cost only.

Usage::

    python benchmarks/bench_service.py
    python benchmarks/bench_service.py --cycles 200 --json BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.service.client import ServiceClient  # noqa: E402
from repro.service.server import ServiceThread  # noqa: E402

DEFAULT_CYCLES = 200
DEFAULT_DEDUP_ROUNDS = 50
DEFAULT_EXPERIMENT = "fig3_4"


def time_submit_to_first_byte(client: ServiceClient, request: dict) -> tuple[float, str]:
    """Seconds from POST /jobs until the first SSE frame arrives."""
    start = time.perf_counter()
    doc = client.submit(**request)
    for _event in client.events(doc["id"]):
        return time.perf_counter() - start, doc["id"]
    raise RuntimeError(f"job {doc['id']}: event stream ended without a frame")


def time_dedup_hits(client: ServiceClient, request: dict, rounds: int) -> dict:
    """End-to-end submit+fetch round trips served from the report store."""
    start = time.perf_counter()
    report_bytes = 0
    for _ in range(rounds):
        doc = client.submit(**request)
        if doc["disposition"] != "dedup_hit":
            raise RuntimeError(
                f"expected a dedup hit, got {doc['disposition']!r} "
                f"(job {doc['id']}, state {doc['state']})"
            )
        report_bytes = len(client.report(doc["id"]))
    elapsed = time.perf_counter() - start
    return {
        "rounds": rounds,
        "wall_s": round(elapsed, 4),
        "rps": round(rounds / elapsed, 2) if elapsed else None,
        "report_bytes": report_bytes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=DEFAULT_CYCLES,
                        help="trace length for the timed job (fast config)")
    parser.add_argument("--experiment", default=DEFAULT_EXPERIMENT)
    parser.add_argument("--dedup-rounds", type=int,
                        default=DEFAULT_DEDUP_ROUNDS)
    parser.add_argument("--json", help="also write the numbers to this file")
    args = parser.parse_args(argv)

    request = {
        "experiments": [args.experiment],
        "fast": True,
        "fmt": "json",
        "cycles": args.cycles,
    }
    with tempfile.TemporaryDirectory(prefix="bench-service-") as state_dir:
        service = ServiceThread(state_dir)
        try:
            client = ServiceClient(port=service.port)
            first_byte_s, job_id = time_submit_to_first_byte(client, request)
            done = client.wait(job_id)
            if done["state"] != "done":
                raise RuntimeError(f"timed job failed: {done.get('error')}")
            dedup = time_dedup_hits(client, request, args.dedup_rounds)
            stats = client.stats()
        finally:
            service.stop()

    print(f"submit_first_byte wall={first_byte_s:7.3f}s "
          f"(experiment {args.experiment}, cycles {args.cycles})", flush=True)
    print(f"dedup_hit         wall={dedup['wall_s']:7.3f}s "
          f"rps={dedup['rps']:g} over {dedup['rounds']} round trips "
          f"({dedup['report_bytes']} report bytes each)", flush=True)

    payload = {
        "experiment": args.experiment,
        "cycles": args.cycles,
        "cpu_count": os.cpu_count(),
        "submit_first_byte_s": round(first_byte_s, 4),
        "dedup_hit_rps": dedup["rps"],
        "dedup": dedup,
        "counters": stats["counters"],
    }
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"service numbers written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
