"""Regenerates Fig. 4.2 (path-delay variation, 4 configurations)."""

from repro.experiments.fig4_02 import run


def test_fig4_02(ctx, run_once):
    result = run_once(run, ctx)
    assert len(result.tables) == 4
    by_title = {t.title.split(":")[0]: t for t in result.tables}
    ntc_buf = by_title["NTC-Buffered"]
    stc_buf = by_title["STC-Buffered"]
    # NTC variation dominates STC: its worst max-ratio exceeds STC's
    assert max(ntc_buf.column("max")) > max(stc_buf.column("max"))
    # and the NTC min-path droop is deeper than STC's
    assert min(ntc_buf.column("min")) < min(stc_buf.column("min")) + 1e-9
