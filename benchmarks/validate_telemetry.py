#!/usr/bin/env python
"""Validate telemetry artifacts against the checked-in schemas.

The CI telemetry job runs this on the ``metrics.json`` / ``trace.json``
written by ``python -m repro.experiments ... --metrics-out --trace-out``
before uploading them as artifacts, so a schema drift fails loudly in
CI instead of silently shipping malformed telemetry.

With ``--ledger`` every parseable line of a run-ledger
(``<dir>/ledger.jsonl``) is validated against
``ledger.schema.json`` — one record schema applied per JSONL line.

Usage (needs ``PYTHONPATH=src`` like the rest of the harness)::

    PYTHONPATH=src python benchmarks/validate_telemetry.py \\
        --metrics metrics.json --trace trace.json --ledger .ledger
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.schema import check

SCHEMA_DIR = Path(__file__).resolve().parent / "schemas"


def validate_file(document_path: str, schema_name: str) -> None:
    with open(document_path) as handle:
        document = json.load(handle)
    schema = json.loads((SCHEMA_DIR / schema_name).read_text())
    check(document, schema, label=document_path)


def validate_events(events_path: str) -> int:
    """Validate every parseable event line; returns the event count.

    Uses the same tolerant replay as the runtime (a truncated tail from
    a crashed writer is skipped, not fatal) — the schema gate is about
    the events that *did* make it to disk intact.
    """
    from repro.obs.events import read_events

    schema = json.loads((SCHEMA_DIR / "events.schema.json").read_text())
    events = read_events(events_path)
    for index, event in enumerate(events):
        check(event, schema, label=f"{events_path}:event[{index}]")
    if not events:
        raise ValueError("no parseable events (empty or corrupt stream)")
    return len(events)


def validate_ledger(ledger_dir: str) -> int:
    """Validate every record of a run ledger; returns the record count."""
    from repro.obs.ledger import RunLedger

    ledger = RunLedger(ledger_dir)
    schema = json.loads((SCHEMA_DIR / "ledger.schema.json").read_text())
    records = ledger.records()
    for index, record in enumerate(records):
        check(record, schema, label=f"{ledger.path}:record[{index}]")
    return len(records)


def validate_audit(stream_path: str) -> int:
    """Validate a packed audit stream's summary; returns the run count.

    Loads the ``.npz`` written by ``--audit-out``, summarises it with
    :func:`repro.obs.audit.audit_document`, and checks the summary
    against ``audit.schema.json``.  An empty stream fails: the CI job
    audits a scheme-simulation experiment, so zero runs means the
    instrumentation went dark.
    """
    from repro.obs import audit

    document = audit.load_audit(stream_path)
    summary = audit.audit_document(
        document["runs"],
        policy=document.get("policy", "full"),
        trace_id=document.get("trace_id", ""),
    )
    schema = json.loads((SCHEMA_DIR / "audit.schema.json").read_text())
    check(summary, schema, label=stream_path)
    if not summary["runs"]:
        raise ValueError("no runs in the audit stream (recorder went dark)")
    return len(summary["runs"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--metrics", help="metrics.json to validate")
    parser.add_argument("--trace", help="trace.json to validate")
    parser.add_argument("--ledger", metavar="DIR",
                        help="run-ledger directory whose records to validate")
    parser.add_argument("--events", metavar="PATH",
                        help="events.jsonl whose lines to validate")
    parser.add_argument("--audit", metavar="PATH",
                        help="packed audit stream (.npz from --audit-out) "
                        "whose summary to validate")
    args = parser.parse_args(argv)
    if not (args.metrics or args.trace or args.ledger or args.events
            or args.audit):
        parser.error("nothing to validate: pass --metrics, --trace, "
                     "--ledger, --events and/or --audit")

    failures = 0
    for document_path, schema_name in (
        (args.metrics, "metrics.schema.json"),
        (args.trace, "trace.schema.json"),
    ):
        if not document_path:
            continue
        try:
            validate_file(document_path, schema_name)
        except (OSError, ValueError) as exc:
            print(f"FAIL {document_path}: {exc}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {document_path} conforms to {schema_name}")
    if args.ledger:
        try:
            count = validate_ledger(args.ledger)
        except (OSError, ValueError) as exc:
            print(f"FAIL {args.ledger}: {exc}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {args.ledger}: {count} ledger record(s) conform "
                  "to ledger.schema.json")
    if args.events:
        try:
            count = validate_events(args.events)
        except (OSError, ValueError) as exc:
            print(f"FAIL {args.events}: {exc}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {args.events}: {count} event(s) conform "
                  "to events.schema.json")
    if args.audit:
        try:
            count = validate_audit(args.audit)
        except (OSError, ValueError) as exc:
            print(f"FAIL {args.audit}: {exc}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {args.audit}: {count} audit run(s) conform "
                  "to audit.schema.json")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
