#!/usr/bin/env python
"""Measure experiment fan-out speedup at --jobs 1/2/4.

Each jobs level runs the same experiment set end to end through the CLI
in a subprocess, with a fresh checkpoint directory per run so every
level does the full computation (no cross-level resume).  Prints a
table of wall-clock seconds, speedup over jobs=1, and parallel
efficiency, and optionally writes the numbers as JSON for the CI
perf-regression gate.

Usage::

    python benchmarks/bench_parallel_scaling.py --fast
    python benchmarks/bench_parallel_scaling.py --fast --jobs 1 2 4 \\
        --experiments fig3_4 tab3_ovh tab4_ovh --json BENCH_scaling.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")

#: two full chapter sweeps (16 error traces over 2 chips) plus three
#: cheap experiments: enough parallelizable artefact work that the
#: fan-out, not interpreter start-up, dominates the wall-clock
DEFAULT_EXPERIMENTS = ("fig3_4", "fig3_8", "fig3_9", "fig4_8", "fig4_9",
                       "tab3_ovh", "tab4_ovh")
DEFAULT_CYCLES = 10_000


def run_once(experiments, jobs, fast, cycles):
    """Wall-clock seconds for one cold CLI run at the given jobs level."""
    ckpt = tempfile.mkdtemp(prefix=f"bench-ckpt-j{jobs}-")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, "-m", "repro.experiments", *experiments,
        "--jobs", str(jobs), "--checkpoint-dir", ckpt,
    ]
    if fast:
        cmd.append("--fast")
    if cycles:
        cmd.extend(["--cycles", str(cycles)])
    start = time.perf_counter()
    try:
        subprocess.run(
            cmd, check=True, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
    finally:
        shutil.rmtree(ckpt, ignore_errors=True)
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument(
        "--experiments", nargs="+", default=list(DEFAULT_EXPERIMENTS)
    )
    parser.add_argument("--fast", action="store_true", default=True)
    parser.add_argument("--cycles", type=int, default=DEFAULT_CYCLES)
    parser.add_argument("--json", help="also write the numbers to this file")
    args = parser.parse_args(argv)

    results = []
    base = None
    for jobs in args.jobs:
        elapsed = run_once(args.experiments, jobs, args.fast, args.cycles)
        if base is None:
            base = elapsed
        results.append(
            {
                "jobs": jobs,
                "wall_s": round(elapsed, 2),
                "speedup": round(base / elapsed, 2),
                "efficiency": round(base / elapsed / jobs, 2),
            }
        )
        print(
            f"jobs={jobs:<3d} wall={elapsed:7.1f}s "
            f"speedup={base / elapsed:5.2f}x "
            f"efficiency={base / elapsed / jobs:5.2f}",
            flush=True,
        )

    payload = {
        "experiments": args.experiments,
        "cpu_count": os.cpu_count(),
        "scaling": results,
    }
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"scaling numbers written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
