"""Regenerates Fig. 4.4 (errors vs operand sizes)."""

import pytest

from repro.experiments.fig4_04 import run


def test_fig4_04(ctx, run_once):
    result = run_once(run, ctx)
    table = result.tables[0]
    for row in table.rows:
        if row[5] > 0:  # errors observed for the instruction
            assert sum(row[1:5]) == pytest.approx(100.0, abs=0.2)
