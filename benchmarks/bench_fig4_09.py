"""Regenerates Fig. 4.9 (Trident accuracy vs CET size)."""

from repro.experiments.fig4_09 import run


def test_fig4_09(ctx, run_once):
    result = run_once(run, ctx)
    table = result.tables[0]
    for row in table.rows:
        accuracies = row[1:]
        assert all(b >= a - 1e-9 for a, b in zip(accuracies, accuracies[1:]))
