"""Regenerates Fig. 4.12 (energy efficiency, Chapter-4 schemes)."""

from repro.experiments.fig4_12 import run


def test_fig4_12(ctx, run_once):
    result = run_once(run, ctx)
    table = result.tables[0]
    trident = table.column("Trident")
    assert sum(trident) / len(trident) > 1.0
