"""Regenerates the Section 3.5.6 overheads table."""

import pytest

from repro.experiments.tab3_overheads import run


def test_tab3_overheads(ctx, run_once):
    result = run_once(run, ctx)
    table = result.tables[0]
    for row in table.rows:
        gates, gates_paper = row[1], row[2]
        assert gates == pytest.approx(gates_paper, rel=0.01)
