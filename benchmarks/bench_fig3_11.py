"""Regenerates Fig. 3.11 (performance of the Chapter-3 schemes)."""

from repro.experiments.fig3_11 import run


def test_fig3_11(ctx, run_once):
    result = run_once(run, ctx)
    table = result.tables[0]
    for row in table.rows:
        benchmark, razor, hfg, icslt, acslt = row
        assert razor == 1.0
        assert max(icslt, acslt) >= 1.0 - 1e-9  # DCS never loses to Razor
