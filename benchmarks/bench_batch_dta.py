"""Throughput of the batched SoA DTA kernel (chip·cycles per second).

``test_batch_dta`` is the gated number: one ``batch_timings`` call
covering a whole fabricated population.  ``test_batch_dta_perchip``
times the same workload through the single-chip API, one chip at a
time, so the report (and ``BENCH_ci.json``) always carries the
batch-vs-per-chip speedup alongside the absolute throughput; it is
deliberately not baselined — it exists for comparison, not gating.
"""

from __future__ import annotations

import pytest

from repro.arch.trace import BENCHMARKS, generate_trace
from repro.circuits.ex_stage import build_ex_stage
from repro.pv.montecarlo import fabricate_population
from repro.timing.dta import cycle_timings

NUM_CHIPS = 8
NUM_CYCLES = 2_000
WIDTH = 16


@pytest.fixture(scope="module")
def workload():
    """(stage, population, encoded inputs) for the FAST-sized kernel run."""
    stage = build_ex_stage(width=WIDTH)
    population = fabricate_population(
        stage.alu.netlist, stage.corner, seeds=range(NUM_CHIPS)
    )
    trace = generate_trace(BENCHMARKS["vortex"], NUM_CYCLES, width=WIDTH, seed=0)
    return stage, population, trace.encode_inputs(stage.alu)


def test_batch_dta(benchmark, workload):
    stage, population, inputs = workload
    batch = benchmark.pedantic(
        stage.batch_timings,
        args=(population.delay_matrix, inputs),
        rounds=3,
        iterations=1,
    )
    assert batch.t_late.shape == (NUM_CHIPS, NUM_CYCLES - 1)
    chip_cycles = population.num_chips * (inputs.shape[1] - 1)
    benchmark.extra_info["chip_cycles"] = chip_cycles
    benchmark.extra_info["chip_cycles_per_s"] = round(
        chip_cycles / benchmark.stats.stats.mean
    )


def test_batch_dta_perchip(benchmark, workload):
    stage, population, inputs = workload

    def per_chip():
        return [
            cycle_timings(stage.circuit, inputs, population.delays[i])
            for i in range(population.num_chips)
        ]

    timings = benchmark.pedantic(per_chip, rounds=3, iterations=1)
    assert len(timings) == NUM_CHIPS
    chip_cycles = population.num_chips * (inputs.shape[1] - 1)
    benchmark.extra_info["chip_cycles"] = chip_cycles
    benchmark.extra_info["chip_cycles_per_s"] = round(
        chip_cycles / benchmark.stats.stats.mean
    )
