"""Regenerates Fig. 3.9 (DCS-ACSLT accuracy for four geometries)."""

from repro.experiments.fig3_09 import run


def test_fig3_09(ctx, run_once):
    result = run_once(run, ctx)
    table = result.tables[0]
    assert table.headers == ["benchmark", "16/8", "16/16", "32/8", "32/16"]
    for row in table.rows:
        # the paper's chosen 32/16 geometry is never the worst
        assert row[4] >= min(row[1:])
