"""Regenerates Fig. 3.2 (CGL vs CDL per ALU operation, STC & NTC)."""

from repro.experiments.fig3_02 import run
from repro.timing.choke import CDL_CATEGORIES


def test_fig3_02(ctx, run_once):
    result = run_once(run, ctx)
    assert len(result.tables) == 2  # STC and NTC
    for table in result.tables:
        assert table.headers == ["op", *CDL_CATEGORIES, "events"]
        assert len(table.rows) == 11
    # NTC must surface at least as many choke events as STC overall
    stc_events = sum(result.tables[0].column("events"))
    ntc_events = sum(result.tables[1].column("events"))
    assert ntc_events >= stc_events
