"""Regenerates the Section 4.5.7 Trident overheads table."""

import pytest

from repro.experiments.tab4_overheads import run


def test_tab4_overheads(ctx, run_once):
    result = run_once(run, ctx)
    row = result.tables[0].rows[0]
    area, area_paper = row[2], row[3]
    assert area == pytest.approx(area_paper, abs=0.08)
