"""Regenerates Fig. 3.3 (CDL vs OWM per operation at NTC).

The set-vs-reset ordering is asserted per-operation only where both
series observed choke activity; at the FAST scale (few chips, short
vector streams) the aggregate ordering is noisy, so the benchmark checks
structure and activity rather than the full-scale shape (recorded in
EXPERIMENTS.md from the default configuration).
"""

from repro.experiments.fig3_03 import run


def test_fig3_03(ctx, run_once):
    result = run_once(run, ctx)
    table = result.tables[0]
    assert table.headers == ["op", "OWM_reset", "OWM_set"]
    assert len(table.rows) == 11
    assert all(v >= 0 for v in table.column("OWM_set"))
    assert all(v >= 0 for v in table.column("OWM_reset"))
    # choke activity must be observable with wide operands
    assert max(table.column("OWM_set")) > 0
