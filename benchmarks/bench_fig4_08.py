"""Regenerates Fig. 4.8 (SE/CE distribution per benchmark)."""

import pytest

from repro.experiments.fig4_08 import run


def test_fig4_08(ctx, run_once):
    result = run_once(run, ctx)
    table = result.tables[0]
    assert len(table.rows) == 6
    total_errors = sum(table.column("total_errors"))
    assert total_errors > 0  # the ch4 reference chip must err
    for row in table.rows:
        if row[4] > 0:
            assert row[1] + row[2] + row[3] == pytest.approx(100.0, abs=0.1)
