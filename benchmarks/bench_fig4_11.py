"""Regenerates Fig. 4.11 (performance, Chapter-4 schemes)."""

from repro.experiments.fig4_11 import run


def test_fig4_11(ctx, run_once):
    result = run_once(run, ctx)
    table = result.tables[0]
    trident = table.column("Trident")
    assert sum(trident) / len(trident) > 1.0  # Trident beats Razor on average
