"""Shared context for the figure-regeneration benchmarks.

Each ``bench_*`` module regenerates one of the paper's figures/tables at
the scaled-down FAST configuration (16-bit ALU, 2 000-cycle traces, the
FAST reference chips) and asserts the figure's expected *shape*.  The
session-scoped context means later benchmarks reuse earlier timing runs,
exactly as the full experiment CLI does.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentContext, FAST_CONFIG


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext(FAST_CONFIG)


@pytest.fixture()
def run_once(benchmark):
    """Benchmark a callable with one timed round (regeneration cost)."""

    def runner(func, *args):
        return benchmark.pedantic(func, args=args, rounds=1, iterations=1)

    return runner
