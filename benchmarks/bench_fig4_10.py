"""Regenerates Fig. 4.10 (penalty cycles, Chapter-4 schemes)."""

from repro.experiments.fig4_10 import run


def test_fig4_10(ctx, run_once):
    result = run_once(run, ctx)
    table = result.tables[0]
    trident = table.column("Trident")
    # Trident's avoidance keeps its penalties below Razor's on average,
    # despite covering min violations Razor ignores
    assert sum(trident) / len(trident) < 1.0
