"""Regenerates Fig. 3.12 (energy efficiency of the Chapter-3 schemes)."""

from repro.experiments.fig3_12 import run


def test_fig3_12(ctx, run_once):
    result = run_once(run, ctx)
    table = result.tables[0]
    for row in table.rows:
        benchmark, razor, hfg, icslt, acslt = row
        assert razor == 1.0
        assert all(v > 0 for v in (hfg, icslt, acslt))
