#!/usr/bin/env python
"""Measure executor-backend overhead: inproc vs procpool vs remote.

Each backend runs the same experiment set end to end through the CLI in
a subprocess with a fresh checkpoint directory (no cross-backend
resume).  The remote level additionally spawns two localhost worker
processes, so its number includes the full socket/frame/heartbeat tax —
the quantity the CI gate watches (warn-only) to catch a coordination
regression hiding behind a still-green test suite.

Usage::

    python benchmarks/bench_backends.py --fast
    python benchmarks/bench_backends.py --fast --cycles 2000 \\
        --json BENCH_backends.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")

#: one real trace simulation plus the two cheap static-estimate tables:
#: enough work to measure coordination overhead without dominating CI
DEFAULT_EXPERIMENTS = ("fig3_4", "tab3_ovh", "tab4_ovh")
DEFAULT_CYCLES = 2_000

BACKENDS = ("inproc", "procpool", "remote")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_workers(count):
    """``count`` localhost workers; returns (procs, addresses)."""
    procs, addresses = [], []
    for _ in range(count):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments", "worker",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=_env(),
        )
        procs.append(proc)
    for proc in procs:
        ready = proc.stdout.readline().split()
        if not ready or ready[0] != "READY":
            raise RuntimeError(f"worker failed to start (said {ready!r})")
        addresses.append(f"127.0.0.1:{ready[1]}")
    return procs, addresses


def run_once(backend, experiments, fast, cycles):
    """Wall-clock seconds for one cold CLI run on the given backend."""
    ckpt = tempfile.mkdtemp(prefix=f"bench-ckpt-{backend}-")
    cmd = [
        sys.executable, "-m", "repro.experiments", *experiments,
        "--backend", backend, "--checkpoint-dir", ckpt,
    ]
    if backend == "inproc":
        cmd.extend(["--jobs", "1"])
    elif backend == "procpool":
        cmd.extend(["--jobs", "2"])
    if fast:
        cmd.append("--fast")
    if cycles:
        cmd.extend(["--cycles", str(cycles)])
    procs = []
    try:
        if backend == "remote":
            procs, addresses = _spawn_workers(2)
            for address in addresses:
                cmd.extend(["--workers", address])
        start = time.perf_counter()
        subprocess.run(
            cmd, check=True, env=_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        return time.perf_counter() - start
    finally:
        for proc in procs:
            proc.kill()
            proc.wait()
        shutil.rmtree(ckpt, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backends", nargs="+", default=list(BACKENDS),
                        choices=BACKENDS)
    parser.add_argument(
        "--experiments", nargs="+", default=list(DEFAULT_EXPERIMENTS)
    )
    parser.add_argument("--fast", action="store_true", default=True)
    parser.add_argument("--cycles", type=int, default=DEFAULT_CYCLES)
    parser.add_argument("--json", help="also write the numbers to this file")
    args = parser.parse_args(argv)

    results = []
    reference = None
    for backend in args.backends:
        elapsed = run_once(backend, args.experiments, args.fast, args.cycles)
        if reference is None:
            reference = elapsed
        results.append(
            {
                "backend": backend,
                "wall_s": round(elapsed, 2),
                "overhead": round(elapsed / reference, 2),
            }
        )
        print(
            f"backend={backend:<9s} wall={elapsed:7.1f}s "
            f"overhead={elapsed / reference:5.2f}x",
            flush=True,
        )

    payload = {
        "experiments": args.experiments,
        "cycles": args.cycles,
        "cpu_count": os.cpu_count(),
        "backends": results,
    }
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"backend numbers written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
