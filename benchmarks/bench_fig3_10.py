"""Regenerates Fig. 3.10 (recovery penalty, Razor vs DCS)."""

from repro.experiments.fig3_10 import run


def test_fig3_10(ctx, run_once):
    result = run_once(run, ctx)
    table = result.tables[0]
    for row in table.rows:
        assert row[2] <= 1.0 + 1e-9
        assert row[3] <= 1.0 + 1e-9
