"""Setuptools shim.

The primary metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` works on environments whose setuptools predates
PEP 660 editable-wheel support (no ``wheel`` package available offline).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Revamping timing error resilience to tackle choke "
        "points at NTC systems' (DATE 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    entry_points={
        "console_scripts": ["repro-experiments=repro.experiments.__main__:main"],
    },
)
